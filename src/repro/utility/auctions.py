"""Simulated auction learning (substitute for the eBay bidding pipeline).

§4.3.4.1 of the paper learns each itemset's value distribution from eBay
bidding histories using the hidden-bid method of Jiang & Leyton-Brown [27],
then sets the value to the learned mean and fits a zero-mean Gaussian with the
learned variance as the item's noise.  The raw eBay histories are not
available offline, so this module provides the closest synthetic equivalent
that exercises the same code path:

1. :func:`simulate_auctions` generates English-auction outcomes where each
   bidder's private value is drawn from a ground-truth Gaussian and only the
   *winning price* (the second-highest value, as in an English/Vickrey
   auction) is observed — the "hidden bids" censoring of [27].
2. :func:`learn_value_distribution` inverts the censoring: using Monte-Carlo
   calibrated order-statistic moments of the Gaussian, it recovers the
   ground-truth mean and standard deviation from observed winning prices.
3. :func:`learn_item_parameters` packages the result the way the paper does:
   value = learned mean, noise = zero-mean Gaussian with the learned sigma,
   fitted to 10,000 samples of the learned distribution.

Tests verify the pipeline round-trips (learned parameters close to ground
truth), which is precisely the property the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class AuctionOutcome:
    """One simulated auction: observed winning price and bidder count."""

    winning_price: float
    num_bidders: int


@dataclass(frozen=True)
class LearnedParameters:
    """Learned value/noise parameters for one itemset."""

    value: float
    noise_std: float


def simulate_auctions(
    true_mean: float,
    true_std: float,
    num_auctions: int,
    bidders_per_auction: int,
    seed: int = 0,
) -> Tuple[AuctionOutcome, ...]:
    """Simulate English auctions with hidden bids.

    Each auction draws ``bidders_per_auction`` private values i.i.d. from
    ``N(true_mean, true_std^2)``; the recorded outcome is the second-highest
    value (the price at which the last competitor drops out).  All other bids
    are hidden — the observability model of [27].
    """
    if num_auctions <= 0:
        raise ValueError(f"num_auctions must be positive, got {num_auctions}")
    if bidders_per_auction < 2:
        raise ValueError("an English auction needs at least 2 bidders")
    rng = np.random.default_rng(seed)
    values = rng.normal(
        true_mean, true_std, size=(num_auctions, bidders_per_auction)
    )
    second_highest = np.sort(values, axis=1)[:, -2]
    return tuple(
        AuctionOutcome(float(p), bidders_per_auction) for p in second_highest
    )


@lru_cache(maxsize=64)
def _second_order_statistic_moments(num_bidders: int) -> Tuple[float, float]:
    """(mean, std) of the 2nd-highest of ``num_bidders`` standard normals.

    Monte-Carlo calibrated with a fixed seed; cached per bidder count.  For
    ``N(mu, sigma^2)`` values the observed winning prices then satisfy
    ``mean_obs = mu + sigma * c`` and ``std_obs = sigma * d``.
    """
    rng = np.random.default_rng(987654321)
    draws = rng.standard_normal(size=(200_000, num_bidders))
    second = np.sort(draws, axis=1)[:, -2]
    return float(second.mean()), float(second.std())


def learn_value_distribution(
    outcomes: Sequence[AuctionOutcome],
) -> LearnedParameters:
    """Recover (mean, std) of the bidders' value distribution.

    Inverts the second-order-statistic censoring using the calibrated moments
    of :func:`_second_order_statistic_moments`.  All auctions must share one
    bidder count (as when scraping one listing category).
    """
    if not outcomes:
        raise ValueError("need at least one auction outcome")
    counts = {o.num_bidders for o in outcomes}
    if len(counts) != 1:
        raise ValueError(
            f"mixed bidder counts not supported, got {sorted(counts)}"
        )
    num_bidders = counts.pop()
    prices = np.array([o.winning_price for o in outcomes], dtype=np.float64)
    c, d = _second_order_statistic_moments(num_bidders)
    observed_std = float(prices.std())
    sigma = observed_std / d if d > 0 else 0.0
    mu = float(prices.mean()) - sigma * c
    return LearnedParameters(value=mu, noise_std=max(sigma, 0.0))


def learn_item_parameters(
    true_mean: float,
    true_std: float,
    num_auctions: int = 200,
    bidders_per_auction: int = 8,
    gaussian_fit_samples: int = 10_000,
    seed: int = 0,
) -> LearnedParameters:
    """End-to-end pipeline mirroring §4.3.4.1.

    Simulates auctions, learns the value distribution, then — exactly as the
    paper describes — takes the mean as the value and fits a Gaussian to
    ``gaussian_fit_samples`` independent samples of the learned distribution
    to obtain the zero-mean noise's sigma.
    """
    outcomes = simulate_auctions(
        true_mean, true_std, num_auctions, bidders_per_auction, seed=seed
    )
    learned = learn_value_distribution(outcomes)
    rng = np.random.default_rng(seed + 1)
    samples = rng.normal(learned.value, learned.noise_std, gaussian_fit_samples)
    fitted_std = float(samples.std())
    return LearnedParameters(value=learned.value, noise_std=fitted_std)
