"""Utility substrate: items, valuations, prices, noise, blocks.

Implements the economic half of the UIC model (§3.1 of the paper): itemsets as
bitmasks, monotone supermodular valuation functions, additive prices, additive
zero-mean noise, the combined utility function ``U = V - P + N``, the block
generation process of §4.2.2.1 used by the paper's analysis, and the "real
Param" learned from auction data (§4.3.4.1).
"""

from repro.utility.itemsets import (
    full_mask,
    item_count,
    items_of,
    iter_nonempty_subsets,
    iter_subsets,
    mask_of,
    popcount,
    subsets_between,
)
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise, NoiseModel, ZeroNoise
from repro.utility.price import AdditivePrice, DiscountedBundlePrice
from repro.utility.valuation import (
    AdditiveValuation,
    ConcaveOverAdditiveValuation,
    ConeValuation,
    LevelwiseValuation,
    TableValuation,
    ValuationFunction,
    is_monotone,
    is_supermodular,
)
from repro.utility.blocks import BlockPartition, generate_blocks, precedence_key

__all__ = [
    "AdditivePrice",
    "AdditiveValuation",
    "ConcaveOverAdditiveValuation",
    "BlockPartition",
    "ConeValuation",
    "DiscountedBundlePrice",
    "GaussianNoise",
    "LevelwiseValuation",
    "NoiseModel",
    "TableValuation",
    "UtilityModel",
    "ValuationFunction",
    "ZeroNoise",
    "full_mask",
    "generate_blocks",
    "is_monotone",
    "is_supermodular",
    "item_count",
    "items_of",
    "iter_nonempty_subsets",
    "iter_subsets",
    "mask_of",
    "popcount",
    "precedence_key",
    "subsets_between",
]
