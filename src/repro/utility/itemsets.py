"""Itemsets as integer bitmasks.

The universe of items ``I`` is indexed ``0 .. k-1`` and an itemset is the
integer whose bit ``j`` is set iff item ``j`` is present.  With the paper's
experiments using at most ten items, exact enumeration over the ``2^k``
subsets (the adoption rule, the block generation process, the valuation
constructions) is cheap, and bitmask arithmetic keeps the inner loops of the
diffusion simulator allocation-free.

A note on indexing: the paper numbers items ``i1, i2, ...`` in non-increasing
budget order, with ``i1`` the largest budget.  Internally we use 0-based
indices; modules that depend on budget order (:mod:`repro.utility.blocks`)
sort explicitly and document the correspondence.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

Mask = int

#: The empty itemset.
EMPTY: Mask = 0


def mask_of(items: Iterable[int]) -> Mask:
    """Bitmask of an iterable of item indices."""
    mask = 0
    for item in items:
        if item < 0:
            raise ValueError(f"item index must be non-negative, got {item}")
        mask |= 1 << item
    return mask


def items_of(mask: Mask) -> Tuple[int, ...]:
    """Sorted tuple of item indices present in ``mask``."""
    items = []
    index = 0
    m = mask
    while m:
        if m & 1:
            items.append(index)
        m >>= 1
        index += 1
    return tuple(items)


def popcount(mask: Mask) -> int:
    """Number of items in the itemset."""
    return mask.bit_count()


def item_count(num_items: int) -> range:
    """Range over item indices for a universe of ``num_items`` items."""
    return range(num_items)


def full_mask(num_items: int) -> Mask:
    """The itemset containing every item of a ``num_items`` universe."""
    return (1 << num_items) - 1


def contains(mask: Mask, item: int) -> bool:
    """Whether ``item`` is in the itemset."""
    return bool(mask >> item & 1)


def is_subset(a: Mask, b: Mask) -> bool:
    """Whether itemset ``a`` is a subset of itemset ``b``."""
    return a & ~b == 0


def iter_subsets(mask: Mask) -> Iterator[Mask]:
    """All subsets of ``mask`` including the empty set, ascending by value.

    Uses the standard subset-enumeration trick ``sub = (sub - mask) & mask``.
    """
    sub = 0
    while True:
        yield sub
        if sub == mask:
            return
        sub = (sub - mask) & mask


def iter_nonempty_subsets(mask: Mask) -> Iterator[Mask]:
    """All non-empty subsets of ``mask``, ascending by integer value."""
    for sub in iter_subsets(mask):
        if sub:
            yield sub


def subsets_between(lower: Mask, upper: Mask) -> Iterator[Mask]:
    """All itemsets ``T`` with ``lower ⊆ T ⊆ upper``.

    This is the search space of the adoption rule: supersets of the already
    adopted set within the desire set.  Raises if ``lower ⊄ upper``.
    """
    if lower & ~upper:
        raise ValueError(
            f"lower mask {lower:#b} is not a subset of upper mask {upper:#b}"
        )
    free = upper & ~lower
    for sub in iter_subsets(free):
        yield lower | sub


def subsets_of_size(mask: Mask, size: int) -> Iterator[Mask]:
    """All subsets of ``mask`` with exactly ``size`` items."""
    items = items_of(mask)
    if size < 0 or size > len(items):
        return
    # Gosper-style enumeration over index combinations.
    import itertools

    for combo in itertools.combinations(items, size):
        yield mask_of(combo)
