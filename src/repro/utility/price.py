"""Additive prices.

The paper assumes prices are additive: ``P(I) = Σ_{i∈I} P(i)`` with
``P(i) > 0`` (§3.1).  Zero prices are tolerated because the paper's own
NP-hardness reduction (Proposition 1) sets ``P(i) = 0``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utility.itemsets import Mask


class AdditivePrice:
    """Per-item prices, summed over itemsets."""

    def __init__(self, item_prices: Sequence[float]):
        prices = np.asarray(item_prices, dtype=np.float64)
        if np.any(prices < 0):
            raise ValueError("item prices must be non-negative")
        self._prices = prices

    @property
    def num_items(self) -> int:
        """Size of the item universe."""
        return int(self._prices.shape[0])

    def item_price(self, item: int) -> float:
        """Price of a single item."""
        return float(self._prices[item])

    def price(self, mask: Mask) -> float:
        """Total price of the itemset ``mask``."""
        total = 0.0
        index = 0
        m = mask
        while m:
            if m & 1:
                total += self._prices[index]
            m >>= 1
            index += 1
        return float(total)

    def as_array(self) -> np.ndarray:
        """Per-item prices as a read-only numpy array."""
        view = self._prices.view()
        view.flags.writeable = False
        return view

    def __call__(self, mask: Mask) -> float:
        return self.price(mask)

    def __repr__(self) -> str:
        return f"AdditivePrice({self._prices.tolist()})"


class DiscountedBundlePrice:
    """Submodular bundle pricing: additive minus a per-extra-item discount.

    ``P(I) = Σ_{i∈I} P(i) − discount · (|I| − 1)`` for ``|I| ≥ 1`` (the
    discount rewards buying bundles).  The paper's §5 notes that submodular
    prices "would further favor item bundling ... utility remains
    supermodular and our results remain intact"; this class realizes that
    extension.  ``discount`` must not exceed the smallest item price, which
    keeps the function monotone and non-negative.
    """

    def __init__(self, item_prices: Sequence[float], discount: float):
        prices = np.asarray(item_prices, dtype=np.float64)
        if np.any(prices < 0):
            raise ValueError("item prices must be non-negative")
        if discount < 0:
            raise ValueError(f"discount must be non-negative, got {discount}")
        if prices.size and discount > float(prices.min()) + 1e-12:
            raise ValueError(
                f"discount {discount} exceeds the smallest item price "
                f"{prices.min()}; price would stop being monotone"
            )
        self._prices = prices
        self._discount = float(discount)

    @property
    def num_items(self) -> int:
        """Size of the item universe."""
        return int(self._prices.shape[0])

    @property
    def discount(self) -> float:
        """The per-extra-item bundle discount."""
        return self._discount

    def item_price(self, item: int) -> float:
        """Price of a single item (no discount applies)."""
        return float(self._prices[item])

    def price(self, mask: Mask) -> float:
        """Discounted total price of the itemset ``mask``."""
        total = 0.0
        count = 0
        index = 0
        m = mask
        while m:
            if m & 1:
                total += self._prices[index]
                count += 1
            m >>= 1
            index += 1
        if count >= 2:
            total -= self._discount * (count - 1)
        return float(total)

    def __call__(self, mask: Mask) -> float:
        return self.price(mask)

    def __repr__(self) -> str:
        return (
            f"DiscountedBundlePrice({self._prices.tolist()}, "
            f"discount={self._discount})"
        )
