"""Per-item noise distributions.

The UIC model attaches an independent zero-mean noise term ``N(i) ~ D_i`` to
each item; noise over an itemset is additive (§3.1).  At the start of each
diffusion a *noise possible world* is sampled — one realized noise value per
item, held fixed until the diffusion terminates (§3.2.3).

A noise world is represented as a plain ``numpy`` vector ``w`` with ``w[i]``
the realized noise of item ``i``; additive aggregation over an itemset mask is
done by the :class:`repro.utility.model.UtilityModel`.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.utility.itemsets import Mask

NoiseWorld = np.ndarray


class NoiseModel(abc.ABC):
    """Independent per-item zero-mean noise distributions."""

    def __init__(self, num_items: int):
        if num_items < 0:
            raise ValueError(f"num_items must be non-negative, got {num_items}")
        self._num_items = num_items

    @property
    def num_items(self) -> int:
        """Size of the item universe."""
        return self._num_items

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> NoiseWorld:
        """Sample one noise world: a length-``num_items`` float vector."""

    def sample_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Sample ``count`` noise worlds as a ``(count, num_items)`` matrix.

        The default draws one :meth:`sample` per world; distributions with
        a vectorized form override it (the batched forward engine samples
        all Monte-Carlo worlds' noise in one call).
        """
        if count == 0:
            return np.zeros((0, self._num_items), dtype=np.float64)
        return np.stack([self.sample(rng) for _ in range(count)])

    @abc.abstractmethod
    def item_std(self, item: int) -> float:
        """Standard deviation of item ``item``'s noise distribution."""

    def exceed_probability(self, item: int, threshold: float) -> float:
        """``Pr[N(item) ≥ threshold]`` — used by the GAP conversion (Eq. 12).

        The default implementation estimates by Monte Carlo; subclasses with a
        closed form override it.
        """
        rng = np.random.default_rng(12345)
        samples = np.array(
            [self.sample(rng)[item] for _ in range(20000)], dtype=np.float64
        )
        return float(np.mean(samples >= threshold))

    @staticmethod
    def total(noise_world: NoiseWorld, mask: Mask) -> float:
        """Additive noise of itemset ``mask`` in a sampled world."""
        total = 0.0
        index = 0
        m = mask
        while m:
            if m & 1:
                total += noise_world[index]
            m >>= 1
            index += 1
        return float(total)


class ZeroNoise(NoiseModel):
    """Degenerate noise: every item's noise is identically zero.

    Used by the paper's illustrating example (Fig. 2) and by the reduction of
    Proposition 1.
    """

    def sample(self, rng: np.random.Generator) -> NoiseWorld:
        return np.zeros(self._num_items, dtype=np.float64)

    def sample_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.zeros((count, self._num_items), dtype=np.float64)

    def item_std(self, item: int) -> float:
        if not 0 <= item < self._num_items:
            raise IndexError(f"item {item} out of range")
        return 0.0

    def exceed_probability(self, item: int, threshold: float) -> float:
        return 1.0 if threshold <= 0.0 else 0.0


class GaussianNoise(NoiseModel):
    """Independent Gaussian noise ``N(i) ~ N(0, σ_i²)``.

    The paper uses Gaussian noise for all experiments ("we use a Gaussian
    distribution for illustration", §4.3.2).
    """

    def __init__(self, stds: Sequence[float]):
        stds_arr = np.asarray(stds, dtype=np.float64)
        if np.any(stds_arr < 0):
            raise ValueError("noise standard deviations must be non-negative")
        super().__init__(int(stds_arr.shape[0]))
        self._stds = stds_arr

    @classmethod
    def uniform(cls, num_items: int, std: float = 1.0) -> "GaussianNoise":
        """Same σ for every item (the paper's N(0,1) default)."""
        return cls([std] * num_items)

    def sample(self, rng: np.random.Generator) -> NoiseWorld:
        return rng.normal(0.0, self._stds)

    def sample_batch(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.normal(
            0.0, self._stds, size=(count, self._num_items)
        )

    def item_std(self, item: int) -> float:
        return float(self._stds[item])

    def exceed_probability(self, item: int, threshold: float) -> float:
        std = self._stds[item]
        if std == 0.0:
            return 1.0 if threshold <= 0.0 else 0.0
        return float(_normal_sf(threshold / std))


class TruncatedGaussianNoise(NoiseModel):
    """Gaussian noise truncated to ``[-bound_i, bound_i]``.

    The paper's non-submodularity counterexamples (Theorem 1) require bounded
    noise ``|N(i)| ≤ |V(i) - P(i)|``; this class provides it.  Truncation is
    symmetric so the mean stays zero.
    """

    def __init__(self, stds: Sequence[float], bounds: Sequence[float]):
        stds_arr = np.asarray(stds, dtype=np.float64)
        bounds_arr = np.asarray(bounds, dtype=np.float64)
        if stds_arr.shape != bounds_arr.shape:
            raise ValueError("stds and bounds must have the same length")
        if np.any(stds_arr < 0) or np.any(bounds_arr < 0):
            raise ValueError("stds and bounds must be non-negative")
        super().__init__(int(stds_arr.shape[0]))
        self._stds = stds_arr
        self._bounds = bounds_arr

    def sample(self, rng: np.random.Generator) -> NoiseWorld:
        raw = rng.normal(0.0, np.where(self._stds > 0, self._stds, 1.0))
        raw = np.where(self._stds > 0, raw, 0.0)
        return np.clip(raw, -self._bounds, self._bounds)

    def item_std(self, item: int) -> float:
        # Clipping shrinks the variance; report the pre-truncation scale,
        # which is what callers configure.
        return float(self._stds[item])


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal, via erfc."""
    import math

    return 0.5 * math.erfc(z / math.sqrt(2.0))
