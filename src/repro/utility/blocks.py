"""Block accounting (§4.2.2 of the paper).

Given a noise world, the analysis of bundleGRD partitions the max-utility
itemset ``I*`` into a sequence of *blocks*, each with non-negative marginal
utility w.r.t. the union of its predecessors, scanning candidate subsets in a
specific *precedence order* ≺ (Fig. 3).  From the block sequence the analysis
derives marginal gains ``Δ_i`` (Eq. 4), *anchor blocks*, *anchor items* and
*effective budgets* ``e_i``.

The block generation process is used only in the paper's proof, not in the
algorithm — we implement it so the proof's structures (Properties 1–3,
Lemmas 4–7) can be validated programmatically, which the test suite does.

Indexing convention
-------------------
The paper renumbers the items of ``I*`` as ``i1, i2, ...`` in non-increasing
budget order (``b1 ≥ b2 ≥ ...``), breaking budget ties by original index for
determinism.  The precedence order then compares two subsets by their items'
indices from highest to lowest (two rules in §4.2.2.1).  That comparison is
*exactly* integer order on bitmasks where bit ``j`` stands for item ``i_{j+1}``
— e.g. with three items the order is {i1}, {i2}, {i1,i2}, {i3}, {i1,i3},
{i2,i3}, {i1,i2,i3} = masks 1..7, matching the paper's Example 1.  A test
cross-checks integer order against a literal transcription of the two rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.utility.itemsets import Mask, items_of


def precedence_key(sorted_space_mask: Mask) -> int:
    """Sort key realizing the paper's precedence order ≺.

    ``sorted_space_mask`` uses the budget-sorted indexing (bit ``j`` = item
    with the (j+1)-th largest budget).  The key is the mask itself: integer
    order coincides with the two comparison rules of §4.2.2.1.
    """
    return sorted_space_mask


def precedence_compare_literal(s: Mask, t: Mask) -> int:
    """Literal transcription of the paper's two comparison rules.

    Returns -1 if ``S ≺ T``, 1 if ``T ≺ S``, 0 if equal.  Used only to verify
    :func:`precedence_key`; ``precedence_key`` is what the scanner uses.
    """
    if s == t:
        return 0
    s_items = sorted(items_of(s), reverse=True)
    t_items = sorted(items_of(t), reverse=True)
    for a, b in zip(s_items, t_items):
        if a != b:
            return -1 if a < b else 1  # rule 2: lower current index first
    # rule 1: the exhausted (shorter) sequence comes first
    return -1 if len(s_items) < len(t_items) else 1


@dataclass(frozen=True)
class BlockPartition:
    """The result of the block generation process for one noise world.

    All masks are in *original* item indexing.  ``order`` maps sorted position
    ``j`` (the paper's item ``i_{j+1}``) to the original item index.
    """

    istar: Mask
    order: Tuple[int, ...]
    blocks: Tuple[Mask, ...]
    deltas: Tuple[float, ...]
    anchor_block_index: Tuple[int, ...]
    anchor_items: Tuple[int, ...]
    effective_budgets: Tuple[int, ...]

    @property
    def num_blocks(self) -> int:
        """Number of blocks ``t`` in the partition."""
        return len(self.blocks)

    def prefix_union(self, i: int) -> Mask:
        """Union ``B_1 ∪ ... ∪ B_i`` (``i`` blocks; ``i=0`` gives ∅)."""
        mask = 0
        for block in self.blocks[:i]:
            mask |= block
        return mask

    def subset_deltas(self, subset: Mask, utility_table: np.ndarray) -> List[float]:
        """Property 3 accounting: ``Δ^A_i`` for ``A_i = A ∩ B_i``.

        ``Δ^A_i = U(A_i | A_1 ∪ ... ∪ A_{i-1})``; the paper shows
        ``Δ^A_i ≤ Δ_i`` and ``Σ_i Δ^A_i = U(A)`` for any ``A ⊆ I*``.
        """
        if subset & ~self.istar:
            raise ValueError("subset must be contained in I*")
        deltas = []
        prefix = 0
        for block in self.blocks:
            part = subset & block
            deltas.append(
                float(utility_table[prefix | part] - utility_table[prefix])
            )
            prefix |= part
        return deltas


def budget_sorted_order(istar: Mask, budgets: Sequence[int]) -> Tuple[int, ...]:
    """Items of ``I*`` in non-increasing budget order (ties by item index)."""
    items = items_of(istar)
    return tuple(sorted(items, key=lambda i: (-int(budgets[i]), i)))


def generate_blocks(
    utility_table: np.ndarray,
    budgets: Sequence[int],
    istar: Mask,
) -> BlockPartition:
    """Run the block generation process of Fig. 3.

    Parameters
    ----------
    utility_table:
        Per-mask utilities ``U_{W^N}`` of the noise world (original indexing),
        as produced by :meth:`repro.utility.model.UtilityModel.utility_table`.
    budgets:
        Per-item seed budgets ``b_i`` (original indexing; covers the full
        universe, not just ``I*``).
    istar:
        The max-utility itemset ``I*`` of the noise world.

    Returns
    -------
    BlockPartition
        Blocks, marginal gains, anchors and effective budgets.

    Notes
    -----
    The scan enumerates candidate subsets in precedence order — ascending
    bitmask integers in budget-sorted index space — skipping subsets that
    overlap already-selected blocks, restarting after each selection exactly
    as Fig. 3 prescribes.  Because ``I*`` is a local maximum, every pass finds
    a block, so the process terminates with a partition of ``I*``.
    """
    if istar == 0:
        return BlockPartition(
            istar=0,
            order=(),
            blocks=(),
            deltas=(),
            anchor_block_index=(),
            anchor_items=(),
            effective_budgets=(),
        )
    order = budget_sorted_order(istar, budgets)
    t = len(order)
    # original-space mask of a sorted-space mask
    to_original = [0] * (1 << t)
    for sorted_mask in range(1 << t):
        mask = 0
        m = sorted_mask
        j = 0
        while m:
            if m & 1:
                mask |= 1 << order[j]
            m >>= 1
            j += 1
        to_original[sorted_mask] = mask

    blocks_sorted: List[Mask] = []
    union_sorted = 0
    union_original = 0
    full = (1 << t) - 1
    while union_sorted != full:
        selected = None
        for candidate in range(1, full + 1):
            if candidate & union_sorted:
                continue
            cand_original = to_original[candidate]
            marginal = (
                utility_table[union_original | cand_original]
                - utility_table[union_original]
            )
            if marginal >= -1e-12:
                selected = candidate
                break
        if selected is None:
            raise RuntimeError(
                "block generation found no candidate with non-negative "
                "marginal utility; I* is not a local maximum of the table"
            )
        blocks_sorted.append(selected)
        union_sorted |= selected
        union_original |= to_original[selected]

    # Marginal gains Δ_i (Eq. 4).
    deltas: List[float] = []
    prefix = 0
    blocks_original: List[Mask] = []
    for block_sorted in blocks_sorted:
        block = to_original[block_sorted]
        blocks_original.append(block)
        deltas.append(float(utility_table[prefix | block] - utility_table[prefix]))
        prefix |= block

    # Anchors: the anchor block of B_i is the block among B_1..B_i with the
    # minimum block budget (block budget = min item budget in the block),
    # ties toward the highest block index.  The anchor item is the highest
    # sorted-indexed (= minimum budget) item of the anchor block.
    block_budgets = [
        min(int(budgets[item]) for item in items_of(block))
        for block in blocks_original
    ]
    anchor_index: List[int] = []
    anchor_items: List[int] = []
    effective: List[int] = []
    for i in range(len(blocks_original)):
        best_j = 0
        for j in range(i + 1):
            if block_budgets[j] <= block_budgets[best_j]:
                best_j = j  # <= keeps the highest index on ties
        anchor_index.append(best_j)
        anchor_block = blocks_original[best_j]
        # highest sorted index = latest position in `order`
        positions = {item: pos for pos, item in enumerate(order)}
        anchor_item = max(items_of(anchor_block), key=lambda it: positions[it])
        anchor_items.append(anchor_item)
        effective.append(
            min(
                int(budgets[item])
                for item in items_of(prefix_union(blocks_original, i + 1))
            )
        )

    return BlockPartition(
        istar=istar,
        order=order,
        blocks=tuple(blocks_original),
        deltas=tuple(deltas),
        anchor_block_index=tuple(anchor_index),
        anchor_items=tuple(anchor_items),
        effective_budgets=tuple(effective),
    )


def prefix_union(blocks: Sequence[Mask], count: int) -> Mask:
    """Union of the first ``count`` blocks."""
    mask = 0
    for block in blocks[:count]:
        mask |= block
    return mask
