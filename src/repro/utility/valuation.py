"""Valuation functions over itemsets.

The UIC model assumes a monotone, supermodular valuation ``V`` with
``V(∅) = 0`` (§3.1).  This module provides:

* :class:`AdditiveValuation` — modular values (Configuration 5),
* :class:`TableValuation` — explicit per-itemset values (the two-item
  configurations of Table 3, and the learned "real Param" of Table 5),
* :class:`ConeValuation` — a core item unlocks value; all supersets of the
  core have positive utility (Configurations 6 and 7),
* :class:`LevelwiseValuation` — the random level-wise construction of
  Configuration 8 (Eq. 13), proven supermodular in the paper's Lemma 10,

plus :func:`is_monotone` / :func:`is_supermodular` exact checkers used by the
property-based tests and by :class:`TableValuation` validation.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.utility.itemsets import (
    Mask,
    full_mask,
    items_of,
    iter_subsets,
    mask_of,
    popcount,
)


class ValuationFunction(abc.ABC):
    """A set function ``V : 2^I -> R`` with ``V(∅) = 0``."""

    def __init__(self, num_items: int):
        if num_items < 0:
            raise ValueError(f"num_items must be non-negative, got {num_items}")
        self._num_items = num_items

    @property
    def num_items(self) -> int:
        """Size of the item universe ``|I|``."""
        return self._num_items

    @abc.abstractmethod
    def value(self, mask: Mask) -> float:
        """Valuation of the itemset ``mask``."""

    def marginal(self, item_mask: Mask, base: Mask) -> float:
        """Marginal value ``V(item_mask | base) = V(base ∪ item_mask) - V(base)``."""
        return self.value(base | item_mask) - self.value(base)

    def table(self) -> Dict[Mask, float]:
        """Materialize the full valuation table (2^k entries)."""
        top = full_mask(self._num_items)
        return {mask: self.value(mask) for mask in iter_subsets(top)}

    def __call__(self, mask: Mask) -> float:
        return self.value(mask)


class AdditiveValuation(ValuationFunction):
    """Modular valuation: ``V(I) = Σ_{i∈I} v_i``."""

    def __init__(self, item_values: Sequence[float]):
        super().__init__(len(item_values))
        self._values = np.asarray(item_values, dtype=np.float64)

    def value(self, mask: Mask) -> float:
        total = 0.0
        index = 0
        m = mask
        while m:
            if m & 1:
                total += self._values[index]
            m >>= 1
            index += 1
        return float(total)


class TableValuation(ValuationFunction):
    """Explicit valuation given as a mapping from itemset to value.

    Parameters
    ----------
    num_items:
        Universe size.
    values:
        Mapping from itemset mask (or iterable of item indices) to value.
        ``V(∅)`` is forced to 0.  Missing masks raise at lookup unless
        ``default_additive`` items are provided to fill gaps.
    validate:
        One of ``None`` (no checks), ``"monotone"``, or ``"supermodular"``
        (implies monotone).  Raises ``ValueError`` when the table violates the
        requested property.
    """

    def __init__(
        self,
        num_items: int,
        values: Mapping[object, float],
        validate: Optional[str] = "supermodular",
    ):
        super().__init__(num_items)
        self._table: Dict[Mask, float] = {0: 0.0}
        for key, val in values.items():
            mask = key if isinstance(key, int) else mask_of(key)
            if mask < 0 or mask > full_mask(num_items):
                raise ValueError(f"mask {mask} outside universe of {num_items} items")
            self._table[mask] = float(val)
        self._table[0] = 0.0
        missing = [
            mask
            for mask in iter_subsets(full_mask(num_items))
            if mask not in self._table
        ]
        if missing:
            raise ValueError(
                f"valuation table incomplete: {len(missing)} itemsets missing, "
                f"first missing mask = {missing[0]:#b}"
            )
        if validate == "monotone":
            if not is_monotone(self):
                raise ValueError("valuation table is not monotone")
        elif validate == "supermodular":
            if not is_monotone(self):
                raise ValueError("valuation table is not monotone")
            if not is_supermodular(self):
                raise ValueError("valuation table is not supermodular")
        elif validate is not None:
            raise ValueError(f"unknown validate mode: {validate!r}")

    def value(self, mask: Mask) -> float:
        return self._table[mask]


class ConeValuation(ValuationFunction):
    """Core-item valuation (Configurations 6 and 7).

    A designated *core* item is necessary for any value: itemsets without it
    are worth 0.  With the core present, the value is chosen so that the
    deterministic utility of the core alone is ``core_utility`` and each
    additional item adds ``addon_utility`` on top of its price:

        V({core} ∪ A) = P(core) + core_utility + Σ_{i∈A} (P(i) + addon_utility)

    All supersets of the core thus have positive utility and everything else
    negative (given positive prices), forming a "cone" in the itemset lattice.
    The function is monotone and (weakly) supermodular.
    """

    def __init__(
        self,
        prices: Sequence[float],
        core_item: int,
        core_utility: float = 5.0,
        addon_utility: float = 2.0,
    ):
        super().__init__(len(prices))
        if not 0 <= core_item < len(prices):
            raise ValueError(f"core_item {core_item} outside universe")
        self._prices = np.asarray(prices, dtype=np.float64)
        self._core = core_item
        self._core_utility = float(core_utility)
        self._addon_utility = float(addon_utility)

    @property
    def core_item(self) -> int:
        """Index of the core item."""
        return self._core

    def value(self, mask: Mask) -> float:
        if not mask >> self._core & 1:
            return 0.0
        total = self._prices[self._core] + self._core_utility
        for item in items_of(mask):
            if item != self._core:
                total += self._prices[item] + self._addon_utility
        return float(total)


class LevelwiseValuation(ValuationFunction):
    """The random level-wise supermodular construction of Configuration 8.

    Level 1 values are given.  For level ``t > 1`` and itemset ``A_t``, for
    each ``i ∈ A_t`` a uniform boost ``ε ~ U[lo, hi]`` is drawn and

        V(i | A_t \\ {i}) = max_{B ⊆ A_t \\ {i}, |B| = t-2} { V(i | B) } + ε
        V(A_t) = max_{i ∈ A_t} { V(A_t \\ {i}) + V(i | A_t \\ {i}) }

    following Eq. (13).  Lemma 10 proves the result supermodular and Lemma 11
    that it is well defined; we validate both in tests.

    The full table is materialized at construction (it must be: values are
    random), so this class is intended for small universes (k ≤ ~12).
    """

    def __init__(
        self,
        level1_values: Sequence[float],
        boost_range: tuple = (1.0, 5.0),
        seed: int = 0,
    ):
        super().__init__(len(level1_values))
        k = len(level1_values)
        if k > 16:
            raise ValueError("LevelwiseValuation supports at most 16 items")
        lo, hi = float(boost_range[0]), float(boost_range[1])
        if lo > hi or lo < 0:
            raise ValueError(f"invalid boost range: {boost_range}")
        rng = np.random.default_rng(seed)
        table: Dict[Mask, float] = {0: 0.0}
        # marginal[(item, base_mask)] = V(item | base_mask)
        marginal: Dict[tuple, float] = {}
        for i in range(k):
            table[1 << i] = float(level1_values[i])
            marginal[(i, 0)] = float(level1_values[i])
        top = full_mask(k)
        by_level: Dict[int, list] = {}
        for mask in iter_subsets(top):
            by_level.setdefault(popcount(mask), []).append(mask)
        for t in range(2, k + 1):
            for mask in sorted(by_level.get(t, [])):
                candidates = []
                for i in items_of(mask):
                    rest = mask & ~(1 << i)
                    # max marginal of i over (t-2)-subsets of rest, plus boost
                    best = max(
                        marginal[(i, b)]
                        for b in _subsets_of_size(rest, t - 2)
                    )
                    m_i = best + float(rng.uniform(lo, hi))
                    marginal[(i, rest)] = m_i
                    candidates.append(table[rest] + m_i)
                table[mask] = max(candidates)
        self._table = table

    def value(self, mask: Mask) -> float:
        return self._table[mask]


class ConcaveOverAdditiveValuation(ValuationFunction):
    """Submodular valuation for *competing* (substitute) items — the §5
    direction ("we could study competition using submodular value functions").

    ``V(I) = scale · (Σ_{i∈I} v_i)^exponent`` with ``exponent ∈ (0, 1]``:
    concave over an additive base, hence monotone and submodular.  Under such
    a valuation the marginal value of an item *shrinks* as a user owns more,
    so the adoption rule naturally stops at the profitable prefix — items
    compete for the user's budget instead of complementing each other.

    Note the paper's approximation guarantee (Theorem 2) does not apply to
    submodular valuations; the UIC simulator runs them regardless (the
    adoption rule's tie-break falls back gracefully off the supermodular
    regime), which is what makes the competitive setting explorable.
    """

    def __init__(
        self,
        item_values: Sequence[float],
        exponent: float = 0.5,
        scale: float = 1.0,
    ):
        super().__init__(len(item_values))
        values = np.asarray(item_values, dtype=np.float64)
        if np.any(values < 0):
            raise ValueError("item values must be non-negative")
        if not 0.0 < exponent <= 1.0:
            raise ValueError(f"exponent must be in (0, 1], got {exponent}")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._values = values
        self._exponent = float(exponent)
        self._scale = float(scale)

    def value(self, mask: Mask) -> float:
        total = 0.0
        index = 0
        m = mask
        while m:
            if m & 1:
                total += self._values[index]
            m >>= 1
            index += 1
        if total <= 0.0:
            return 0.0
        return float(self._scale * total**self._exponent)


def _subsets_of_size(mask: Mask, size: int) -> Iterable[Mask]:
    import itertools

    items = items_of(mask)
    if size == 0:
        return (0,)
    return (mask_of(c) for c in itertools.combinations(items, size))


def is_monotone(valuation: ValuationFunction, tol: float = 1e-9) -> bool:
    """Exact monotonicity check: ``V(S) ≤ V(S ∪ {x})`` for all ``S, x``."""
    top = full_mask(valuation.num_items)
    for mask in iter_subsets(top):
        base = valuation.value(mask)
        for x in range(valuation.num_items):
            if mask >> x & 1:
                continue
            if valuation.value(mask | 1 << x) < base - tol:
                return False
    return True


def is_supermodular(valuation: ValuationFunction, tol: float = 1e-9) -> bool:
    """Exact supermodularity check via the local pairwise criterion.

    ``f`` is supermodular iff for every mask ``A`` and distinct ``x, y ∉ A``:
    ``f(A+x+y) - f(A+y) ≥ f(A+x) - f(A)``.
    """
    top = full_mask(valuation.num_items)
    for mask in iter_subsets(top):
        for x in range(valuation.num_items):
            if mask >> x & 1:
                continue
            gain_x = valuation.value(mask | 1 << x) - valuation.value(mask)
            for y in range(x + 1, valuation.num_items):
                if mask >> y & 1 or y == x:
                    continue
                with_y = mask | 1 << y
                gain_x_given_y = valuation.value(with_y | 1 << x) - valuation.value(
                    with_y
                )
                if gain_x_given_y < gain_x - tol:
                    return False
    return True


def is_submodular(valuation: ValuationFunction, tol: float = 1e-9) -> bool:
    """Exact submodularity check (reverse inequality of supermodularity)."""
    top = full_mask(valuation.num_items)
    for mask in iter_subsets(top):
        for x in range(valuation.num_items):
            if mask >> x & 1:
                continue
            gain_x = valuation.value(mask | 1 << x) - valuation.value(mask)
            for y in range(x + 1, valuation.num_items):
                if mask >> y & 1 or y == x:
                    continue
                with_y = mask | 1 << y
                gain_x_given_y = valuation.value(with_y | 1 << x) - valuation.value(
                    with_y
                )
                if gain_x_given_y > gain_x + tol:
                    return False
    return True
