"""The combined utility model ``U(I) = V(I) - P(I) + N(I)``.

:class:`UtilityModel` bundles a valuation, additive prices and a noise model
for one universe of items, and provides the operations the diffusion engine
and the analysis machinery need:

* deterministic (expected) utility ``V - P``,
* realized utility in a sampled noise world,
* per-world utility *tables* (length ``2^k`` arrays indexed by itemset mask)
  — the representation the UIC simulator iterates over,
* the maximum-utility itemset ``I*`` of a noise world with the paper's
  tie-break (ties are resolved toward larger sets; by Lemma 1 the union of
  tied local maxima is itself tied, so taking the highest-utility set of
  maximal cardinality is well defined),
* local-maximum checks (Lemma 1/2 machinery).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.utility.itemsets import Mask, items_of, iter_subsets
from repro.utility.noise import NoiseModel, NoiseWorld, ZeroNoise
from repro.utility.valuation import ValuationFunction


class UtilityModel:
    """Utility ``U = V - P + N`` over a universe of ``k`` items.

    Parameters
    ----------
    valuation:
        Monotone supermodular valuation ``V`` (supermodularity is required by
        the paper's guarantee, not by the simulator; see §3.3.2).
    price:
        Price function ``P`` — :class:`AdditivePrice` (the paper's default)
        or any object with ``price(mask)`` / ``num_items`` such as
        :class:`DiscountedBundlePrice` (the submodular-price extension of
        §5, which keeps ``U`` supermodular).
    noise:
        Per-item zero-mean noise model ``N``; defaults to zero noise.
    item_names:
        Optional display names, index-aligned with items.
    """

    def __init__(
        self,
        valuation: ValuationFunction,
        price,
        noise: Optional[NoiseModel] = None,
        item_names: Optional[Sequence[str]] = None,
    ):
        if price.num_items != valuation.num_items:
            raise ValueError(
                f"price has {price.num_items} items but valuation has "
                f"{valuation.num_items}"
            )
        noise = noise if noise is not None else ZeroNoise(valuation.num_items)
        if noise.num_items != valuation.num_items:
            raise ValueError(
                f"noise has {noise.num_items} items but valuation has "
                f"{valuation.num_items}"
            )
        if item_names is not None and len(item_names) != valuation.num_items:
            raise ValueError("item_names length must match the universe size")
        self._valuation = valuation
        self._price = price
        self._noise = noise
        self._names = list(item_names) if item_names is not None else None
        self._num_items = valuation.num_items
        # Deterministic utility table, indexed by itemset mask.
        size = 1 << self._num_items
        table = np.empty(size, dtype=np.float64)
        for mask in range(size):
            table[mask] = valuation.value(mask) - price.price(mask)
        self._expected_table = table

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_items(self) -> int:
        """Size of the item universe ``k``."""
        return self._num_items

    @property
    def valuation(self) -> ValuationFunction:
        """The valuation function ``V``."""
        return self._valuation

    @property
    def price(self):
        """The price function ``P``."""
        return self._price

    @property
    def noise(self) -> NoiseModel:
        """The noise model ``N``."""
        return self._noise

    def item_name(self, item: int) -> str:
        """Display name of an item (``"i{index+1}"`` if unnamed, to match
        the paper's 1-based item labels)."""
        if self._names is not None:
            return self._names[item]
        return f"i{item + 1}"

    # ------------------------------------------------------------------
    # Utility evaluation
    # ------------------------------------------------------------------
    def expected_utility(self, mask: Mask) -> float:
        """Deterministic utility ``V(I) - P(I)`` (noise has zero mean)."""
        return float(self._expected_table[mask])

    def sample_noise_world(self, rng: np.random.Generator) -> NoiseWorld:
        """Sample one noise possible world ``W^N``."""
        return self._noise.sample(rng)

    def utility(self, mask: Mask, noise_world: Optional[NoiseWorld] = None) -> float:
        """Realized utility ``U_W(I)`` in a noise world (expected if None)."""
        base = float(self._expected_table[mask])
        if noise_world is None:
            return base
        return base + NoiseModel.total(noise_world, mask)

    def utility_table(self, noise_world: Optional[NoiseWorld] = None) -> np.ndarray:
        """Per-world utility table: ``table[mask] = U_W(mask)``.

        This is the object the diffusion simulator and the block generation
        process consume; building it once per noise world keeps the adoption
        rule's inner loop to a couple of array lookups.
        """
        if noise_world is None:
            return self._expected_table.copy()
        size = 1 << self._num_items
        noise_totals = np.zeros(size, dtype=np.float64)
        for item in range(self._num_items):
            bit = 1 << item
            # masks containing `item` are those with the bit set; exploit the
            # doubling structure instead of looping over all masks per item.
            noise_totals[bit : 2 * bit] += noise_world[item]
            step = 2 * bit
            for start in range(step + bit, size, step):
                noise_totals[start : start + bit] += noise_world[item]
        return self._expected_table + noise_totals

    def utility_tables(self, noise_worlds: np.ndarray) -> np.ndarray:
        """Per-world utility tables for a ``(num_worlds, k)`` noise matrix.

        The vectorized sibling of :meth:`utility_table`:
        ``result[w, mask] = U_{W_w}(mask)``.  One numpy pass per item over
        the masks containing it; this is what lets the batched forward
        engine build all Monte-Carlo worlds' tables without a per-world
        Python loop.
        """
        noise_worlds = np.asarray(noise_worlds, dtype=np.float64)
        size = 1 << self._num_items
        totals = np.zeros((noise_worlds.shape[0], size), dtype=np.float64)
        masks = np.arange(size)
        for item in range(self._num_items):
            containing = np.flatnonzero(masks & (1 << item))
            totals[:, containing] += noise_worlds[:, item][:, None]
        return self._expected_table[None, :] + totals

    # ------------------------------------------------------------------
    # Structure of a noise world
    # ------------------------------------------------------------------
    def best_itemset(self, utility_table: np.ndarray) -> Mask:
        """The paper's ``I*``: the max-utility itemset, ties toward unions.

        By Lemma 1 the union of tied maximizers is itself a maximizer, so the
        result is the unique maximal itemset attaining the maximum utility.
        """
        best = float(np.max(utility_table))
        union = 0
        for mask in range(len(utility_table)):
            if utility_table[mask] >= best - 1e-12:
                union |= mask
        # Lemma 1 guarantees the union attains the max; assert in debug runs.
        return union

    @staticmethod
    def is_local_maximum(utility_table: np.ndarray, mask: Mask) -> bool:
        """Whether ``mask`` has the max utility among all of its subsets."""
        target = utility_table[mask]
        for sub in iter_subsets(mask):
            if utility_table[sub] > target + 1e-12:
                return False
        return True

    def describe(self, mask: Mask) -> str:
        """Human-readable itemset, e.g. ``"{i1, i3}"``."""
        names = ", ".join(self.item_name(i) for i in items_of(mask))
        return "{" + names + "}"

    def __repr__(self) -> str:
        return (
            f"UtilityModel(num_items={self._num_items}, "
            f"valuation={type(self._valuation).__name__}, "
            f"noise={type(self._noise).__name__})"
        )
