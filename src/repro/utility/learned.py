"""The "real Param" of §4.3.4: PlayStation 4 bundle parameters (Table 5).

The paper learns value and noise parameters for five items — a PlayStation 4
console (``ps``), a controller (``c``) and three games (``g1``–``g3``) — from
eBay bidding histories, with prices from Craigslist/Facebook.  Table 5 lists
the learned anchors; the text pins down the remaining structure:

* any itemset without ``ps`` has value 0 ("any of c, g1..g3, without the core
  item ps, is useless"),
* games are interchangeable ("any itemset with ps, c and any two games has the
  same utility"),
* the only itemsets with *positive* deterministic utility contain ``ps``,
  ``c`` and at least two games.

We therefore model the valuation as a function of ``(has_c, num_games)`` in
the presence of ``ps``, anchored to Table 5 and completed so every itemset
outside the positive cone has negative deterministic utility.

A faithfulness note: the Table 5 anchors are *real learned values* and are not
exactly supermodular (e.g. the controller's marginal value jumps from 7 to 44
as games are added — strong complementarity — while the games' own marginals
dip).  The paper's algorithm never reads valuations, so the experiments run
unchanged; tests assert monotonicity, the positive-utility cone, and document
where exact supermodularity fails.  ``strict_supermodular=True`` instead
returns a minimally adjusted table that is exactly supermodular, for property
tests that need one.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.utility.itemsets import Mask, full_mask, iter_subsets, popcount
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation

#: Item indices of the real-parameter universe.
PS, CONTROLLER, GAME1, GAME2, GAME3 = range(5)

ITEM_NAMES: Tuple[str, ...] = ("ps", "c", "g1", "g2", "g3")

#: Prices (C$) from Craigslist/Facebook groups (§4.3.4.1).
PRICES: Tuple[float, ...] = (260.0, 20.0, 5.0, 5.0, 5.0)

#: Table 5 anchors: (has_controller, num_games) -> learned value, ps present.
_ANCHORS: Dict[Tuple[bool, int], float] = {
    (False, 0): 213.0,  # {ps}
    (True, 0): 220.0,  # {ps, c}
    (False, 3): 258.0,  # {ps, g1, g2, g3}
    (True, 2): 292.5,  # {ps, c, 2 games}
    (True, 3): 302.0,  # {ps, c, g1, g2, g3}
}

#: Completion for profiles Table 5 does not list, chosen monotone and keeping
#: the deterministic utility strictly negative (prices: ps+g = 265, ps+2g =
#: 270, ps+c+g = 285).
_COMPLETION: Dict[Tuple[bool, int], float] = {
    (False, 1): 216.0,  # {ps, 1 game}           utility 216 - 265 < 0
    (False, 2): 240.0,  # {ps, 2 games}          utility 240 - 270 < 0
    (True, 1): 270.0,  # {ps, c, 1 game}         utility 270 - 285 < 0
}

#: Noise standard deviations per item, decomposed from Table 5's itemset-level
#: Gaussians (noise is additive and independent, so itemset variances are sums
#: of item variances; these choices reproduce the reported scales:
#: {ps}: N(0,4) -> sigma_ps = 4, and the bundles add a few units each).
NOISE_STDS: Tuple[float, ...] = (4.0, 2.0, 1.5, 1.5, 1.5)


def real_value_table(strict_supermodular: bool = False) -> Dict[Mask, float]:
    """Full 32-entry valuation table for the five-item universe."""
    profile = dict(_ANCHORS)
    profile.update(_COMPLETION)
    if strict_supermodular:
        profile = _supermodular_projection(profile)
    table: Dict[Mask, float] = {}
    for mask in iter_subsets(full_mask(5)):
        if not mask >> PS & 1:
            table[mask] = 0.0
            continue
        has_c = bool(mask >> CONTROLLER & 1)
        games = popcount(mask >> GAME1)  # bits above controller are games
        table[mask] = profile[(has_c, games)]
    return table


def _supermodular_projection(
    profile: Dict[Tuple[bool, int], float],
) -> Dict[Tuple[bool, int], float]:
    """Minimally adjust the (has_c, games) profile to exact supermodularity.

    We keep the headline anchors {ps}, {ps,c} and the grand bundle fixed and
    lift intermediate values just enough that marginals are non-decreasing
    along both coordinates, including against the value-0 no-``ps`` region
    (which forces all ps-present marginals of c and games to be >= 0, already
    true).  The result stays within a few dollars of Table 5.
    """
    adjusted = dict(profile)
    # Work on the 2 x 4 grid v[c][g]; enforce convexity in g per row and
    # non-decreasing c-marginals in g, by a small iterative repair.
    for _ in range(64):
        changed = False
        for c in (False, True):
            for g in range(2):  # marginals m(g) = v(g+1)-v(g) non-decreasing
                m0 = adjusted[(c, g + 1)] - adjusted[(c, g)]
                m1 = adjusted[(c, g + 2)] if g + 2 <= 3 else None
                if m1 is not None:
                    m1 = adjusted[(c, g + 2)] - adjusted[(c, g + 1)]
                    if m0 > m1 + 1e-9:
                        # lower the middle point to restore convexity
                        adjusted[(c, g + 1)] = (
                            adjusted[(c, g)] + adjusted[(c, g + 2)]
                        ) / 2.0
                        changed = True
        for g in range(3):  # c-marginal non-decreasing in g
            mc0 = adjusted[(True, g)] - adjusted[(False, g)]
            mc1 = adjusted[(True, g + 1)] - adjusted[(False, g + 1)]
            if mc0 > mc1 + 1e-9:
                adjusted[(False, g)] = adjusted[(True, g)] - mc1
                changed = True
        if not changed:
            break
    return adjusted


def real_utility_model(strict_supermodular: bool = False) -> UtilityModel:
    """The learned PlayStation-bundle utility model (Table 5).

    With the default ``strict_supermodular=False`` the valuation reproduces
    Table 5 verbatim and is validated as monotone only (real data; see module
    docstring).
    """
    valuation = TableValuation(
        5,
        real_value_table(strict_supermodular),
        validate="supermodular" if strict_supermodular else "monotone",
    )
    return UtilityModel(
        valuation,
        AdditivePrice(PRICES),
        GaussianNoise(NOISE_STDS),
        item_names=ITEM_NAMES,
    )


def table5_rows() -> Tuple[Dict[str, object], ...]:
    """The rows of Table 5 as reproduced by this module."""
    model = real_utility_model()
    rows = []
    for items, label in (
        ((PS,), "{ps}"),
        ((PS, CONTROLLER), "{ps, c}"),
        ((PS, GAME1, GAME2, GAME3), "{ps, g1, g2, g3}"),
        ((PS, GAME1, GAME2, CONTROLLER), "{ps, g1, g2, c}"),
        ((PS, GAME1, GAME2, GAME3, CONTROLLER), "{ps, g1, g2, g3, c}"),
    ):
        mask = 0
        for item in items:
            mask |= 1 << item
        rows.append(
            {
                "itemset": label,
                "price": model.price.price(mask),
                "value": model.valuation.value(mask),
                "utility": model.expected_utility(mask),
            }
        )
    return tuple(rows)
