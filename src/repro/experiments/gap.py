"""GAP ↔ utility correspondence (Eq. 12 of the paper).

The Com-IC baselines are parameterized by Global Adoption Probabilities; the
paper shows how a two-item UIC utility configuration induces them:

    q_{i1|∅}  = Pr[ N(i1) ≥ P(i1) − V(i1) ]
    q_{i1|i2} = Pr[ N(i1) ≥ P(i1) − (V({i1,i2}) − V(i2)) ]

and symmetrically for item 2.  The reverse direction (building a UIC utility
model that realizes given GAP parameters) is what "the GAP parameters can be
simulated within the UIC framework" means: with unit-variance Gaussian noise
and fixed prices, values are recovered through the normal quantile function.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.diffusion.comic import ComICModel
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation


def gap_from_utility(model: UtilityModel) -> ComICModel:
    """Derive the four GAP parameters from a two-item utility model."""
    if model.num_items != 2:
        raise ValueError(
            f"GAP conversion is defined for 2 items, got {model.num_items}"
        )
    price = model.price
    value = model.valuation
    noise = model.noise
    v1, v2, v12 = value.value(0b01), value.value(0b10), value.value(0b11)
    p1, p2 = price.item_price(0), price.item_price(1)
    return ComICModel(
        q_a_empty=noise.exceed_probability(0, p1 - v1),
        q_a_given_b=noise.exceed_probability(0, p1 - (v12 - v2)),
        q_b_empty=noise.exceed_probability(1, p2 - v2),
        q_b_given_a=noise.exceed_probability(1, p2 - (v12 - v1)),
    )


def utility_from_gap(
    gap: ComICModel,
    prices: Tuple[float, float] = (3.0, 4.0),
    noise_std: float = 1.0,
) -> UtilityModel:
    """Build a two-item UIC utility model realizing the GAP parameters.

    Inverts Eq. (12) assuming Gaussian noise with the given σ: each GAP value
    pins one threshold through the normal quantile.  The bundle value must
    satisfy both cross conditions simultaneously; they are consistent exactly
    when ``Φ⁻¹`` thresholds agree, so the two implied bundle values are
    averaged and the resulting model's GAP is within quantile round-off.
    Requires a mutually complementary instance.
    """
    if not gap.is_mutually_complementary():
        raise ValueError("utility_from_gap requires mutual complementarity")
    p1, p2 = prices

    def _value_from_q(q: float, price: float) -> float:
        # q = Pr[N ≥ price − value] = SF((price − value)/σ)
        #   => value = price − σ · SF⁻¹(q)
        return price - noise_std * _survival_quantile(q)

    v1 = _value_from_q(gap.q_a_empty, p1)
    v2 = _value_from_q(gap.q_b_empty, p2)
    # q_{a|b}: value12 - v2 plays the role of item 1's standalone value.
    v12_from_a = _value_from_q(gap.q_a_given_b, p1) + v2
    v12_from_b = _value_from_q(gap.q_b_given_a, p2) + v1
    v12 = (v12_from_a + v12_from_b) / 2.0
    v12 = max(v12, v1, v2)  # keep the table monotone
    valuation = TableValuation(
        2,
        {0b01: max(v1, 0.0), 0b10: max(v2, 0.0), 0b11: v12},
        validate="monotone",
    )
    return UtilityModel(
        valuation,
        AdditivePrice([p1, p2]),
        GaussianNoise([noise_std, noise_std]),
        item_names=("i1", "i2"),
    )


def _survival_quantile(q: float, tol: float = 1e-10) -> float:
    """SF⁻¹(q): the z with ``Pr[N(0,1) ≥ z] = q``, by bisection.

    The standard-normal survival function is strictly decreasing, so z is
    unique; e.g. ``SF⁻¹(0.5) = 0`` and ``SF⁻¹(0.84) ≈ −1``.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile defined for q in (0, 1), got {q}")
    lo, hi = -12.0, 12.0
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if 0.5 * math.erfc(mid / math.sqrt(2.0)) > q:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
