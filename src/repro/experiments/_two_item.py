"""Shared driver for the two-item experiments (Figs. 4, 5 and 6).

One run sweeps the configuration's budget vectors and, for each, executes
every requested algorithm, recording expected social welfare (Fig. 4),
wall-clock seconds (Fig. 5) and RR-set counts (Fig. 6) in one pass — the
three figures are different projections of the same experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.bundle_disjoint import bundle_disjoint
from repro.baselines.item_disjoint import item_disjoint
from repro.baselines.rr_cim import rr_cim
from repro.baselines.rr_sim import rr_sim_plus
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.engine import EngineContext, ensure_context
from repro.experiments.configs import TwoItemConfig, two_item_config
from repro.experiments.runner import stopwatch
from repro.graph import datasets
from repro.graph.digraph import InfluenceGraph

#: The algorithms of §4.3.2, in the paper's legend order.
TWO_ITEM_ALGORITHMS: Tuple[str, ...] = (
    "bundleGRD",
    "RR-SIM+",
    "RR-CIM",
    "item-disj",
    "bundle-disj",
)


@dataclass(frozen=True)
class TwoItemRun:
    """One (algorithm, budget vector) measurement."""

    algorithm: str
    budgets: Tuple[int, int]
    welfare: float
    welfare_stderr: float
    seconds: float
    num_rr_sets: int


def run_two_item_experiment(
    config_id: int,
    network: str = "douban-movie",
    scale: float = 0.1,
    budget_vectors: Optional[Sequence[Tuple[int, int]]] = None,
    algorithms: Sequence[str] = TWO_ITEM_ALGORITHMS,
    num_samples: int = 100,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    comic_forward_worlds: int = 10,
    graph: Optional[InfluenceGraph] = None,
    backend: Optional[str] = None,
    ctx: Optional[EngineContext] = None,
) -> List[TwoItemRun]:
    """Run the two-item sweep for one Table 3 configuration.

    Parameters
    ----------
    config_id:
        Configuration 1–4.
    network, scale:
        Stand-in dataset and node-count scale (§5 of DESIGN.md); or pass a
        pre-built ``graph``.
    budget_vectors:
        Budget sweep; defaults to the paper's (uniform 10..50 or b2 30..110).
    algorithms:
        Subset of :data:`TWO_ITEM_ALGORITHMS` to run.
    num_samples:
        MC samples per welfare estimate.
    backend:
        Removed — raises ``TypeError``; pass
        ``ctx=EngineContext.create(backend=...)`` instead.  A ``None``
        ``ctx`` resolves ``$REPRO_RR_BACKEND`` (default
        batched) — the same switch every algorithm reads at context
        construction, so the CLI's ``--rr-backend`` reconfigures the whole
        run.
    ctx:
        Policy :class:`repro.engine.EngineContext`: its backend (and
        triggering) apply to every algorithm run; each (algorithm, budget)
        pair still derives a fresh RNG stream from ``seed`` via
        ``ctx.with_stream``, so runs stay independent and reproducible.

    Returns
    -------
    list of TwoItemRun
        One entry per (algorithm, budget vector).
    """
    policy = ensure_context(
        ctx, backend=backend, caller="run_two_item_experiment"
    )
    unknown = set(algorithms) - set(TWO_ITEM_ALGORITHMS)
    if unknown:
        raise ValueError(f"unknown algorithms: {sorted(unknown)}")
    config: TwoItemConfig = two_item_config(config_id)
    if graph is None:
        graph = datasets.load(network, scale=scale)
    if budget_vectors is None:
        budget_vectors = config.budget_vectors()

    runs: List[TwoItemRun] = []
    for budgets in budget_vectors:
        budgets = (int(budgets[0]), int(budgets[1]))
        for algorithm in algorithms:
            timing: Dict[str, float] = {}
            run_ctx = policy.with_stream(rng=np.random.default_rng(seed))
            with stopwatch(timing):
                if algorithm == "bundleGRD":
                    result = bundle_grd(
                        graph, list(budgets), epsilon=epsilon, ell=ell,
                        ctx=run_ctx,
                    )
                    allocation, rr_sets = result.allocation, result.num_rr_sets
                elif algorithm == "item-disj":
                    result = item_disjoint(
                        graph, list(budgets), epsilon=epsilon, ell=ell,
                        ctx=run_ctx,
                    )
                    allocation, rr_sets = result.allocation, result.num_rr_sets
                elif algorithm == "bundle-disj":
                    result = bundle_disjoint(
                        graph,
                        config.model,
                        list(budgets),
                        epsilon=epsilon,
                        ell=ell,
                        ctx=run_ctx,
                    )
                    allocation, rr_sets = result.allocation, result.num_rr_sets
                elif algorithm == "RR-SIM+":
                    result = rr_sim_plus(
                        graph,
                        config.gap,
                        budgets,
                        epsilon=epsilon,
                        ell=ell,
                        num_forward_worlds=comic_forward_worlds,
                        ctx=run_ctx,
                    )
                    allocation, rr_sets = result.allocation, result.num_rr_sets
                else:  # RR-CIM
                    result = rr_cim(
                        graph,
                        config.gap,
                        budgets,
                        epsilon=epsilon,
                        ell=ell,
                        num_forward_worlds=comic_forward_worlds,
                        ctx=run_ctx,
                    )
                    allocation, rr_sets = result.allocation, result.num_rr_sets
            welfare = estimate_welfare(
                graph,
                config.model,
                allocation,
                num_samples=num_samples,
                ctx=policy.with_stream(rng=np.random.default_rng(seed + 1)),
            )
            runs.append(
                TwoItemRun(
                    algorithm=algorithm,
                    budgets=budgets,
                    welfare=welfare.mean,
                    welfare_stderr=welfare.stderr,
                    seconds=timing["seconds"],
                    num_rr_sets=rr_sets,
                )
            )
    return runs


def runs_as_rows(runs: Sequence[TwoItemRun]) -> List[Dict[str, object]]:
    """Flatten runs into printable/assertable dict rows."""
    return [
        {
            "algorithm": r.algorithm,
            "b1": r.budgets[0],
            "b2": r.budgets[1],
            "welfare": round(r.welfare, 1),
            "stderr": round(r.welfare_stderr, 2),
            "seconds": round(r.seconds, 3),
            "rr_sets": r.num_rr_sets,
        }
        for r in runs
    ]
