"""Fig. 9(a–c) — propagation vs network externality (bundleGRD vs BDHS).

The BDHS baselines assign the best virtual item to *every* node (no budget,
no propagation) and realize utility through externality functions; that total
is the benchmark.  bundleGRD's per-item budget is then swept as a fraction of
``n`` to find where UIC propagation reaches the benchmark.  Paper shape: on
dense networks (Orkut) bundleGRD needs <35% of the full budget; on sparse
ones (Douban-Book) more (~82%), and ~75% of the benchmark welfare is already
reached at 50% budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.bdhs import bdhs_concave_welfare, bdhs_step_welfare
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.runner import print_table
from repro.graph import datasets
from repro.graph.digraph import InfluenceGraph
from repro.utility.learned import real_utility_model
from repro.utility.model import UtilityModel


@dataclass(frozen=True)
class BDHSComparisonResult:
    """One panel of Fig. 9(a–c)."""

    network: str
    benchmark_step: float
    benchmark_concave: float
    fractions: Tuple[float, ...]
    welfare: Tuple[float, ...]

    def fraction_to_match(self, benchmark: float) -> Optional[float]:
        """Smallest swept budget fraction whose welfare ≥ benchmark."""
        for frac, wel in zip(self.fractions, self.welfare):
            if wel >= benchmark:
                return frac
        return None


def run_fig9_bdhs(
    network: str = "orkut",
    scale: float = 0.05,
    fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0),
    model: Optional[UtilityModel] = None,
    num_samples: int = 30,
    num_step_worlds: int = 30,
    concave_probability: float = 0.05,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
) -> BDHSComparisonResult:
    """Regenerate one panel of Fig. 9(a–c).

    ``concave_probability`` is the uniform edge probability the concave
    variant's restriction requires (the graph is reweighted for the
    benchmark; bundleGRD runs on the network's native WC weights).
    """
    if graph is None:
        graph = datasets.load(network, scale=scale)
    model = model if model is not None else real_utility_model()

    step = bdhs_step_welfare(
        graph, model, num_worlds=num_step_worlds, rng=np.random.default_rng(seed)
    )
    concave = bdhs_concave_welfare(
        graph.with_probabilities(concave_probability),
        model,
        probability=concave_probability,
    )

    n = graph.num_nodes
    welfares: List[float] = []
    for frac in fractions:
        budget = max(1, int(round(frac * n)))
        budgets = [budget] * model.num_items
        allocation = bundle_grd(
            graph, budgets, epsilon=epsilon, ell=ell, rng=np.random.default_rng(seed)
        ).allocation
        est = estimate_welfare(
            graph,
            model,
            allocation,
            num_samples=num_samples,
            rng=np.random.default_rng(seed + 1),
        )
        welfares.append(est.mean)
    return BDHSComparisonResult(
        network=network,
        benchmark_step=step.welfare,
        benchmark_concave=concave.welfare,
        fractions=tuple(float(f) for f in fractions),
        welfare=tuple(welfares),
    )


def result_rows(result: BDHSComparisonResult) -> List[Dict[str, object]]:
    """Printable rows: budget fraction vs welfare, with benchmarks."""
    rows: List[Dict[str, object]] = []
    for frac, wel in zip(result.fractions, result.welfare):
        rows.append(
            {
                "network": result.network,
                "budget_pct": round(100 * frac, 1),
                "bundleGRD_welfare": round(wel, 1),
                "bdhs_step": round(result.benchmark_step, 1),
                "bdhs_concave": round(result.benchmark_concave, 1),
            }
        )
    return rows


def main() -> None:  # pragma: no cover - manual entry point
    for network in ("orkut", "douban-book", "douban-movie"):
        result = run_fig9_bdhs(network, scale=0.02, fractions=(0.1, 0.5, 1.0))
        print_table(result_rows(result), title=f"Fig 9 — {network}")


if __name__ == "__main__":  # pragma: no cover
    main()
