"""Fig. 9(d) — scalability of bundleGRD on BFS-grown subgraphs (Orkut).

The network is grown by BFS to 20%..100% of its nodes under two edge
probability settings — weighted cascade (``1/d_in``) and fixed ``p = 0.01`` —
with a uniform per-item budget of 50.  Paper shape: running time grows
roughly linearly with network size, welfare sublinearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.runner import print_table, stopwatch
from repro.graph import datasets
from repro.graph.analysis import bfs_subgraph
from repro.graph.weighting import reweight
from repro.utility.learned import real_utility_model
from repro.utility.model import UtilityModel


@dataclass(frozen=True)
class ScalabilityRun:
    """One (probability setting, network percentage) measurement."""

    setting: str
    percentage: float
    num_nodes: int
    num_edges: int
    welfare: float
    seconds: float


def run_fig9_scalability(
    network: str = "orkut",
    scale: float = 0.05,
    percentages: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    budget: int = 50,
    model: Optional[UtilityModel] = None,
    num_samples: int = 30,
    fixed_probability: float = 0.01,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
) -> List[ScalabilityRun]:
    """Regenerate Fig. 9(d): welfare and time vs network size, two settings."""
    base = datasets.load(network, scale=scale)
    model = model if model is not None else real_utility_model()
    budgets = [int(budget)] * model.num_items
    runs: List[ScalabilityRun] = []
    for setting in ("wc", "fixed"):
        for pct in percentages:
            sub = bfs_subgraph(base, float(pct), seed=seed)
            if setting == "fixed":
                sub = reweight(sub, "fixed", probability=fixed_probability)
            timing: Dict[str, float] = {}
            with stopwatch(timing):
                allocation = bundle_grd(
                    sub,
                    budgets,
                    epsilon=epsilon,
                    ell=ell,
                    rng=np.random.default_rng(seed),
                ).allocation
            welfare = estimate_welfare(
                sub,
                model,
                allocation,
                num_samples=num_samples,
                rng=np.random.default_rng(seed + 1),
            )
            runs.append(
                ScalabilityRun(
                    setting=setting,
                    percentage=float(pct),
                    num_nodes=sub.num_nodes,
                    num_edges=sub.num_edges,
                    welfare=welfare.mean,
                    seconds=timing["seconds"],
                )
            )
    return runs


def runs_as_rows(runs: Sequence[ScalabilityRun]) -> List[Dict[str, object]]:
    """Printable rows for the scalability sweep."""
    return [
        {
            "setting": r.setting,
            "pct": round(100 * r.percentage),
            "nodes": r.num_nodes,
            "edges": r.num_edges,
            "welfare": round(r.welfare, 1),
            "seconds": round(r.seconds, 3),
        }
        for r in runs
    ]


def main() -> None:  # pragma: no cover - manual entry point
    runs = run_fig9_scalability(scale=0.02, percentages=(0.5, 1.0), budget=20)
    print_table(runs_as_rows(runs), title="Fig 9(d) — scalability")


if __name__ == "__main__":  # pragma: no cover
    main()
