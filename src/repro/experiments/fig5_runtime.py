"""Fig. 5 — running times of the five algorithms on four networks (config 1).

Paper shape: bundleGRD and bundle-disj coincide (configs 1/2 make bundles
singletons, so both boil down to IMM calls); bundleGRD is up to five orders
of magnitude faster than RR-CIM and ~1.5× faster than item-disj; the Com-IC
algorithms time out on Twitter (panel d omits them) — we mirror that with a
``comic_networks`` allowlist.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments._two_item import (
    TWO_ITEM_ALGORITHMS,
    TwoItemRun,
    run_two_item_experiment,
    runs_as_rows,
)
from repro.experiments.runner import print_table

#: Fig. 5's panels, in order.
FIG5_NETWORKS: Tuple[str, ...] = (
    "flixster",
    "douban-book",
    "douban-movie",
    "twitter",
)

#: Networks small enough to run the TIM-based Com-IC baselines on (the paper
#: itself omits them from the Twitter panel after a 6-hour timeout).
COMIC_NETWORKS: Tuple[str, ...] = ("flixster", "douban-book", "douban-movie")


def run_fig5(
    networks: Sequence[str] = FIG5_NETWORKS,
    scale: float = 0.1,
    budget_vectors: Optional[Sequence[Tuple[int, int]]] = None,
    num_samples: int = 20,
    seed: int = 0,
    comic_networks: Sequence[str] = COMIC_NETWORKS,
    backend: Optional[str] = None,
    ctx=None,
) -> Dict[str, List[TwoItemRun]]:
    """Regenerate the four panels of Fig. 5 (config 1, times per network).

    ``ctx`` selects the engine backend
    for every algorithm and the welfare evaluation (``None`` resolves
    ``$REPRO_RR_BACKEND``).
    """
    if budget_vectors is None:
        budget_vectors = [(10, 10), (30, 30), (50, 50)]
    panels: Dict[str, List[TwoItemRun]] = {}
    for network in networks:
        algorithms = [
            a
            for a in TWO_ITEM_ALGORITHMS
            if network in comic_networks or a not in ("RR-SIM+", "RR-CIM")
        ]
        panels[network] = run_two_item_experiment(
            config_id=1,
            network=network,
            scale=scale,
            budget_vectors=budget_vectors,
            algorithms=algorithms,
            num_samples=num_samples,
            seed=seed,
            backend=backend,
            ctx=ctx,
        )
    return panels


def runtime_series(runs: Sequence[TwoItemRun]) -> Dict[str, List[float]]:
    """Per-algorithm wall-clock series (the plotted lines, in seconds)."""
    series: Dict[str, List[float]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(run.seconds)
    return series


def main() -> None:  # pragma: no cover - manual entry point
    panels = run_fig5(scale=0.05, budget_vectors=[(10, 10), (30, 30)])
    for network, runs in panels.items():
        print_table(runs_as_rows(runs), title=f"Fig 5 — {network}")


if __name__ == "__main__":  # pragma: no cover
    main()
