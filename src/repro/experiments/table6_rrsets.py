"""Table 6 — RR-set counts: bundleGRD vs MAX_IMM vs IMM_MAX.

bundleGRD's one PRIMA call must not use more RR sets than single-item IMM on
the dominating budget.  Two IMM reference points:

* **IMM_MAX**: IMM invoked once with the maximum budget;
* **MAX_IMM**: IMM invoked per budget, reporting the maximum count (the two
  differ in principle because IMM's sample size is not monotone in ``k``).

The paper reports all three *exactly equal* under each of the three budget
distributions of §4.3.4.3.  Equality requires aligning the failure-probability
bookkeeping (PRIMA's ``ℓ′`` includes the union bound over ``|b|`` budgets),
so the IMM runs here receive PRIMA's ``ℓ′`` explicitly — the comparison the
paper's memory claim is about — and all runs share an RNG seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.configs import real_param_skews
from repro.experiments.runner import print_table
from repro.graph import datasets
from repro.graph.digraph import InfluenceGraph
from repro.rrset.bounds import adjusted_ell, ell_prime_for
from repro.rrset.imm import imm
from repro.rrset.prima import prima


@dataclass(frozen=True)
class Table6Row:
    """RR-set counts for one budget distribution."""

    distribution: str
    budgets: tuple
    bundle_grd: int
    max_imm: int
    imm_max: int


def run_table6(
    network: str = "twitter",
    scale: float = 0.1,
    total_budget: int = 500,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
) -> List[Table6Row]:
    """Regenerate Table 6 for the three budget distributions."""
    if graph is None:
        graph = datasets.load(network, scale=scale)
    n = graph.num_nodes
    rows: List[Table6Row] = []
    for name, budgets in real_param_skews(total_budget).items():
        distinct = sorted(set(budgets), reverse=True)
        ell_p = ell_prime_for(adjusted_ell(ell, n), n, len(budgets))
        prima_result = prima(
            graph,
            budgets,
            epsilon=epsilon,
            ell=ell,
            rng=np.random.default_rng(seed),
        )
        imm_max = imm(
            graph,
            max(budgets),
            epsilon=epsilon,
            ell=ell,
            rng=np.random.default_rng(seed),
            ell_prime=ell_p,
        ).num_rr_sets
        max_imm = max(
            imm(
                graph,
                k,
                epsilon=epsilon,
                ell=ell,
                rng=np.random.default_rng(seed),
                ell_prime=ell_p,
            ).num_rr_sets
            for k in distinct
        )
        rows.append(
            Table6Row(
                distribution=name,
                budgets=tuple(budgets),
                bundle_grd=prima_result.num_rr_sets,
                max_imm=max_imm,
                imm_max=imm_max,
            )
        )
    return rows


def rows_as_dicts(rows: Sequence[Table6Row]) -> List[Dict[str, object]]:
    """Printable rows for Table 6."""
    return [
        {
            "distribution": r.distribution,
            "budgets": "/".join(str(b) for b in r.budgets),
            "bundleGRD": r.bundle_grd,
            "MAX_IMM": r.max_imm,
            "IMM_MAX": r.imm_max,
        }
        for r in rows
    ]


def main() -> None:  # pragma: no cover - manual entry point
    rows = run_table6(scale=0.04, total_budget=100)
    print_table(rows_as_dicts(rows), title="Table 6 — RR set counts")


if __name__ == "__main__":  # pragma: no cover
    main()
