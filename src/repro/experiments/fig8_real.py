"""Fig. 8 — number-of-items scaling and the real-Param experiments.

* **(a)** running time vs number of items (config 5, per-item budget 50):
  bundleGRD is flat in the item count — its one PRIMA call depends only on
  the max budget — while item-disj's single IMM call grows with ``k·s`` and
  bundle-disj pays one IMM call per item.
* **(b, c)** welfare and running time vs total budget under the learned
  PlayStation parameters (Table 5), budgets split 30/30/20/10/10.  item-disj
  yields zero welfare here (every singleton has negative utility) and is
  omitted, as in the paper.
* **(d)** budget-skew study: uniform / large-skew / moderate-skew splits of a
  fixed total budget; uniform gives the best welfare and lowest time, large
  skew the worst of both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.bundle_disjoint import bundle_disjoint
from repro.baselines.item_disjoint import item_disjoint
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.configs import (
    multi_item_config,
    real_param_budgets,
    real_param_skews,
)
from repro.experiments.runner import print_table, stopwatch
from repro.graph import datasets
from repro.graph.digraph import InfluenceGraph
from repro.utility.learned import real_utility_model


@dataclass(frozen=True)
class ItemsRuntimeRun:
    """Fig. 8(a): one (algorithm, #items) timing."""

    algorithm: str
    num_items: int
    seconds: float


def run_items_runtime(
    network: str = "twitter",
    scale: float = 0.1,
    item_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    per_item_budget: int = 50,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
) -> List[ItemsRuntimeRun]:
    """Fig. 8(a): running time as the number of items grows (config 5)."""
    if graph is None:
        graph = datasets.load(network, scale=scale)
    runs: List[ItemsRuntimeRun] = []
    for s in item_counts:
        s = int(s)
        config, _ = multi_item_config(
            5, num_items=s, total_budget=per_item_budget * s, seed=seed
        )
        budgets = [per_item_budget] * s
        for algorithm in ("bundleGRD", "item-disj", "bundle-disj"):
            timing: Dict[str, float] = {}
            rng = np.random.default_rng(seed)
            with stopwatch(timing):
                if algorithm == "bundleGRD":
                    bundle_grd(graph, budgets, epsilon=epsilon, ell=ell, rng=rng)
                elif algorithm == "item-disj":
                    item_disjoint(graph, budgets, epsilon=epsilon, ell=ell, rng=rng)
                else:
                    bundle_disjoint(
                        graph, config.model, budgets, epsilon=epsilon, ell=ell, rng=rng
                    )
            runs.append(
                ItemsRuntimeRun(
                    algorithm=algorithm, num_items=s, seconds=timing["seconds"]
                )
            )
    return runs


@dataclass(frozen=True)
class RealParamRun:
    """Fig. 8(b,c): one (algorithm, total budget) welfare + time point."""

    algorithm: str
    total_budget: int
    budgets: Tuple[int, ...]
    welfare: float
    welfare_stderr: float
    seconds: float


def run_real_param_sweep(
    network: str = "twitter",
    scale: float = 0.1,
    total_budgets: Sequence[int] = (100, 300, 500),
    num_samples: int = 60,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
) -> List[RealParamRun]:
    """Fig. 8(b,c): bundleGRD vs bundle-disj under the learned Param.

    item-disj is omitted: with all singletons at negative deterministic
    utility its welfare is identically 0 (§4.3.4.1).
    """
    if graph is None:
        graph = datasets.load(network, scale=scale)
    model = real_utility_model()
    runs: List[RealParamRun] = []
    for total in total_budgets:
        budgets = real_param_budgets(int(total))
        for algorithm in ("bundleGRD", "bundle-disj"):
            timing: Dict[str, float] = {}
            rng = np.random.default_rng(seed)
            with stopwatch(timing):
                if algorithm == "bundleGRD":
                    allocation = bundle_grd(
                        graph, budgets, epsilon=epsilon, ell=ell, rng=rng
                    ).allocation
                else:
                    allocation = bundle_disjoint(
                        graph, model, budgets, epsilon=epsilon, ell=ell, rng=rng
                    ).allocation
            welfare = estimate_welfare(
                graph,
                model,
                allocation,
                num_samples=num_samples,
                rng=np.random.default_rng(seed + 1),
            )
            runs.append(
                RealParamRun(
                    algorithm=algorithm,
                    total_budget=int(total),
                    budgets=tuple(budgets),
                    welfare=welfare.mean,
                    welfare_stderr=welfare.stderr,
                    seconds=timing["seconds"],
                )
            )
    return runs


@dataclass(frozen=True)
class SkewRun:
    """Fig. 8(d): one budget-distribution measurement (bundleGRD)."""

    distribution: str
    budgets: Tuple[int, ...]
    welfare: float
    welfare_stderr: float
    seconds: float


def run_budget_skew(
    network: str = "twitter",
    scale: float = 0.1,
    total_budget: int = 500,
    num_samples: int = 60,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
) -> List[SkewRun]:
    """Fig. 8(d): welfare/time of bundleGRD under the three budget skews."""
    if graph is None:
        graph = datasets.load(network, scale=scale)
    model = real_utility_model()
    runs: List[SkewRun] = []
    for name, budgets in real_param_skews(total_budget).items():
        timing: Dict[str, float] = {}
        rng = np.random.default_rng(seed)
        with stopwatch(timing):
            allocation = bundle_grd(
                graph, budgets, epsilon=epsilon, ell=ell, rng=rng
            ).allocation
        welfare = estimate_welfare(
            graph,
            model,
            allocation,
            num_samples=num_samples,
            rng=np.random.default_rng(seed + 1),
        )
        runs.append(
            SkewRun(
                distribution=name,
                budgets=tuple(budgets),
                welfare=welfare.mean,
                welfare_stderr=welfare.stderr,
                seconds=timing["seconds"],
            )
        )
    return runs


def main() -> None:  # pragma: no cover - manual entry point
    rows = [
        {"algorithm": r.algorithm, "items": r.num_items, "seconds": round(r.seconds, 3)}
        for r in run_items_runtime(scale=0.04, item_counts=(1, 3, 5))
    ]
    print_table(rows, title="Fig 8(a) — items vs runtime")
    rows = [
        {
            "algorithm": r.algorithm,
            "total": r.total_budget,
            "welfare": round(r.welfare, 1),
            "seconds": round(r.seconds, 3),
        }
        for r in run_real_param_sweep(scale=0.04, total_budgets=(100, 200))
    ]
    print_table(rows, title="Fig 8(b,c) — real Param sweep")
    rows = [
        {
            "distribution": r.distribution,
            "welfare": round(r.welfare, 1),
            "seconds": round(r.seconds, 3),
        }
        for r in run_budget_skew(scale=0.04, total_budget=200)
    ]
    print_table(rows, title="Fig 8(d) — budget skew")


if __name__ == "__main__":  # pragma: no cover
    main()
