"""Fig. 7 — multi-item welfare, configurations 5–8 (Twitter stand-in).

RR-SIM+/RR-CIM cannot go beyond two items, so the comparison is bundleGRD vs
item-disj vs bundle-disj.  The total budget is swept and split per
§4.3.3.2 (uniform for configs 5 and 8; 20%/2% skewed otherwise).  Paper
shape: bundleGRD matches bundle-disj where the configs force the same
allocation, and otherwise beats every baseline by up to ~4×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.bundle_disjoint import bundle_disjoint
from repro.baselines.item_disjoint import item_disjoint
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.configs import multi_item_config
from repro.experiments.runner import print_table, stopwatch
from repro.graph import datasets
from repro.graph.digraph import InfluenceGraph

MULTI_ITEM_ALGORITHMS: Tuple[str, ...] = ("bundleGRD", "item-disj", "bundle-disj")


@dataclass(frozen=True)
class MultiItemRun:
    """One (algorithm, total budget) measurement."""

    algorithm: str
    total_budget: int
    budgets: Tuple[int, ...]
    welfare: float
    welfare_stderr: float
    seconds: float


def run_fig7(
    config_id: int,
    network: str = "twitter",
    scale: float = 0.1,
    total_budgets: Sequence[int] = (100, 300, 500),
    num_items: int = 5,
    algorithms: Sequence[str] = MULTI_ITEM_ALGORITHMS,
    num_samples: int = 60,
    epsilon: float = 0.5,
    ell: float = 1.0,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
    backend: Optional[str] = None,
    ctx=None,
) -> List[MultiItemRun]:
    """Regenerate one panel of Fig. 7 (configs 5–8 → panels a–d).

    ``ctx`` selects the engine backend
    for the seed-selection algorithms and the welfare evaluation
    (``None`` resolves ``$REPRO_RR_BACKEND``).
    """
    from repro.engine import ensure_context

    policy = ensure_context(ctx, backend=backend, caller="run_fig7")
    unknown = set(algorithms) - set(MULTI_ITEM_ALGORITHMS)
    if unknown:
        raise ValueError(f"unknown algorithms: {sorted(unknown)}")
    if graph is None:
        graph = datasets.load(network, scale=scale)
    runs: List[MultiItemRun] = []
    for total in total_budgets:
        config, budgets = multi_item_config(
            config_id, num_items=num_items, total_budget=int(total), seed=seed
        )
        for algorithm in algorithms:
            timing: Dict[str, float] = {}
            run_ctx = policy.with_stream(rng=np.random.default_rng(seed))
            with stopwatch(timing):
                if algorithm == "bundleGRD":
                    allocation = bundle_grd(
                        graph, budgets, epsilon=epsilon, ell=ell, ctx=run_ctx
                    ).allocation
                elif algorithm == "item-disj":
                    allocation = item_disjoint(
                        graph, budgets, epsilon=epsilon, ell=ell, ctx=run_ctx
                    ).allocation
                else:
                    allocation = bundle_disjoint(
                        graph,
                        config.model,
                        budgets,
                        epsilon=epsilon,
                        ell=ell,
                        ctx=run_ctx,
                    ).allocation
            welfare = estimate_welfare(
                graph,
                config.model,
                allocation,
                num_samples=num_samples,
                ctx=policy.with_stream(rng=np.random.default_rng(seed + 1)),
            )
            runs.append(
                MultiItemRun(
                    algorithm=algorithm,
                    total_budget=int(total),
                    budgets=tuple(budgets),
                    welfare=welfare.mean,
                    welfare_stderr=welfare.stderr,
                    seconds=timing["seconds"],
                )
            )
    return runs


def runs_as_rows(runs: Sequence[MultiItemRun]) -> List[Dict[str, object]]:
    """Flatten runs into printable dict rows."""
    return [
        {
            "algorithm": r.algorithm,
            "total_budget": r.total_budget,
            "budgets": "/".join(str(b) for b in r.budgets),
            "welfare": round(r.welfare, 1),
            "stderr": round(r.welfare_stderr, 2),
            "seconds": round(r.seconds, 3),
        }
        for r in runs
    ]


def welfare_series(runs: Sequence[MultiItemRun]) -> Dict[str, List[float]]:
    """Per-algorithm welfare series over the total-budget sweep."""
    series: Dict[str, List[float]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(run.welfare)
    return series


def main() -> None:  # pragma: no cover - manual entry point
    for config_id in (5, 6, 7, 8):
        runs = run_fig7(config_id, scale=0.04, total_budgets=(100, 200), num_samples=30)
        print_table(runs_as_rows(runs), title=f"Fig 7 — Configuration {config_id}")


if __name__ == "__main__":  # pragma: no cover
    main()
