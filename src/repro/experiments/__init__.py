"""Experiment harness regenerating every table and figure of §4.3.

Each ``figN_*`` module exposes a ``run_*`` function returning the rows/series
the corresponding paper figure plots, at a configurable scale.  The
``benchmarks/`` directory wires each one into a pytest-benchmark target; the
measured outputs are recorded in EXPERIMENTS.md.

* Table 3 / Table 4 / Table 5 configurations — :mod:`repro.experiments.configs`
* GAP ↔ utility conversion (Eq. 12) — :mod:`repro.experiments.gap`
* Fig 4 (two-item welfare) — :mod:`repro.experiments.fig4_welfare`
* Fig 5 (running time) — :mod:`repro.experiments.fig5_runtime`
* Fig 6 (#RR sets) — :mod:`repro.experiments.fig6_rrsets`
* Fig 7 (multi-item welfare) — :mod:`repro.experiments.fig7_multi_item`
* Fig 8 (items vs runtime; real Param) — :mod:`repro.experiments.fig8_real`
* Fig 9(a-c) (BDHS comparison) — :mod:`repro.experiments.fig9_bdhs`
* Fig 9(d) (scalability) — :mod:`repro.experiments.fig9_scalability`
* Table 6 (#RR sets parity) — :mod:`repro.experiments.table6_rrsets`
"""

from repro.experiments.configs import (
    MultiItemConfig,
    TwoItemConfig,
    multi_item_config,
    real_param_budgets,
    two_item_config,
)
from repro.experiments.gap import gap_from_utility, utility_from_gap

__all__ = [
    "MultiItemConfig",
    "TwoItemConfig",
    "gap_from_utility",
    "multi_item_config",
    "real_param_budgets",
    "two_item_config",
    "utility_from_gap",
]
