"""The paper's experimental configurations (Tables 3 and 4, real Param).

Two-item configurations 1–4 (Table 3)
-------------------------------------
Prices ``P(i1)=3, P(i2)=4``; Gaussian noise with unit variance per item.

* Configs 1/2: ``V(i1)=3, V(i2)=4, V({i1,i2})=8`` — both items have
  non-negative deterministic utility (GAP: ``q_{i|∅}=0.5, q_{i|j}=0.84``).
* Configs 3/4: ``V(i1)=3, V(i2)=3, V({i1,i2})=8`` — item 2's deterministic
  utility is negative (GAP: ``q_{i1|∅}=0.5, q_{i2|∅}=0.16, q_{i1|i2}=0.98,
  q_{i2|i1}=0.84``).

Odd configs use uniform budgets (both items ``k``); even configs non-uniform
(``b1 = 70`` fixed, ``b2`` swept).

Multi-item configurations 5–8 (Table 4)
---------------------------------------
* Config 5 — additive: every item has deterministic utility 1; uniform
  budgets (minimal advantage to bundling, by design).
* Config 6 — cone-max: a core item (the max-budget one) with utility 5
  unlocks the cone; every addon contributes utility 2; non-uniform budgets.
* Config 7 — cone-min: as 6 but the core is the min-budget item.
* Config 8 — level-wise: the random supermodular construction of Eq. (13);
  uniform budgets.

Non-uniform totals are split 20% to the max-budget item, 2% to the min, and
the rest uniformly (§4.3.3.2); the real-Param split is 30/30/20/10/10
(§4.3.4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.diffusion.comic import ComICModel
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import (
    AdditiveValuation,
    ConeValuation,
    LevelwiseValuation,
    TableValuation,
)


@dataclass(frozen=True)
class TwoItemConfig:
    """One row of Table 3."""

    config_id: int
    model: UtilityModel
    gap: ComICModel
    uniform_budgets: bool

    def budget_vectors(
        self,
        uniform_range: Sequence[int] = (10, 30, 50),
        fixed_b1: int = 70,
        b2_range: Sequence[int] = (30, 50, 70, 90, 110),
    ) -> List[Tuple[int, int]]:
        """The budget sweep the paper plots on the x axis."""
        if self.uniform_budgets:
            return [(k, k) for k in uniform_range]
        return [(fixed_b1, b2) for b2 in b2_range]


def two_item_config(config_id: int) -> TwoItemConfig:
    """Configurations 1–4 of Table 3."""
    if config_id not in (1, 2, 3, 4):
        raise ValueError(f"two-item configs are 1..4, got {config_id}")
    prices = AdditivePrice([3.0, 4.0])
    noise = GaussianNoise([1.0, 1.0])
    if config_id in (1, 2):
        valuation = TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0})
        gap = ComICModel(
            q_a_empty=0.5, q_a_given_b=0.84, q_b_empty=0.5, q_b_given_a=0.84
        )
    else:
        valuation = TableValuation(2, {0b01: 3.0, 0b10: 3.0, 0b11: 8.0})
        gap = ComICModel(
            q_a_empty=0.5, q_a_given_b=0.98, q_b_empty=0.16, q_b_given_a=0.84
        )
    model = UtilityModel(valuation, prices, noise, item_names=("i1", "i2"))
    return TwoItemConfig(
        config_id=config_id,
        model=model,
        gap=gap,
        uniform_budgets=config_id % 2 == 1,
    )


@dataclass(frozen=True)
class MultiItemConfig:
    """One row of Table 4."""

    config_id: int
    model: UtilityModel
    uniform_budgets: bool

    def split_budget(self, total: int) -> List[int]:
        """Split a total budget across items per §4.3.3.2."""
        return split_total_budget(
            total, self.model.num_items, uniform=self.uniform_budgets
        )


def split_total_budget(
    total: int, num_items: int, uniform: bool
) -> List[int]:
    """Uniform split, or the paper's 20%-max / 2%-min / rest-uniform split."""
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if total < 0:
        raise ValueError(f"total budget must be non-negative, got {total}")
    if uniform or num_items == 1:
        base = total // num_items
        budgets = [base] * num_items
        for i in range(total - base * num_items):
            budgets[i] += 1
        return budgets
    max_budget = max(1, int(round(0.20 * total)))
    min_budget = max(1, int(round(0.02 * total)))
    rest = total - max_budget - min_budget
    middle_items = num_items - 2
    base = rest // middle_items if middle_items else 0
    budgets = [max_budget] + [base] * middle_items + [min_budget]
    for i in range(rest - base * middle_items):
        budgets[1 + i % max(middle_items, 1)] += 1
    # With few items the uniform middle share can exceed the nominal 20% of
    # the designated max item; sort non-increasing so that "max-budget item"
    # and "min-budget item" (the cone configurations' core choices) stay
    # meaningful regardless of the split arithmetic.
    return sorted(budgets, reverse=True)


def multi_item_config(
    config_id: int,
    num_items: int = 5,
    total_budget: int = 300,
    seed: int = 0,
) -> Tuple[MultiItemConfig, List[int]]:
    """Configurations 5–8 of Table 4, plus the derived budget vector.

    The budget vector is needed up front for the cone configurations (the
    core item is the max- or min-budget item).
    """
    if config_id not in (5, 6, 7, 8):
        raise ValueError(f"multi-item configs are 5..8, got {config_id}")
    uniform = config_id in (5, 8)
    budgets = split_total_budget(total_budget, num_items, uniform=uniform)
    noise = GaussianNoise.uniform(num_items, 1.0)

    if config_id == 5:
        # Additive: utility 1 per item (price 1, value 2).
        prices = AdditivePrice([1.0] * num_items)
        valuation = AdditiveValuation([2.0] * num_items)
    elif config_id in (6, 7):
        prices = AdditivePrice([1.0] * num_items)
        core = (
            int(np.argmax(budgets)) if config_id == 6 else int(np.argmin(budgets))
        )
        valuation = ConeValuation(
            prices.as_array(), core_item=core, core_utility=5.0, addon_utility=2.0
        )
    else:
        # Level-wise: random level-1 utilities, a random subset non-negative.
        rng = np.random.default_rng(seed)
        prices = AdditivePrice([float(p) for p in rng.uniform(1.0, 4.0, num_items)])
        level1 = []
        for i in range(num_items):
            offset = rng.uniform(-2.0, 2.0)
            level1.append(max(0.0, prices.item_price(i) + offset))
        valuation = LevelwiseValuation(level1, boost_range=(1.0, 5.0), seed=seed)
    model = UtilityModel(valuation, prices, noise)
    return (
        MultiItemConfig(config_id=config_id, model=model, uniform_budgets=uniform),
        budgets,
    )


def real_param_budgets(total: int) -> List[int]:
    """The 30/30/20/10/10 split over (ps, c, g1, g2, g3) of §4.3.4.2."""
    if total < 0:
        raise ValueError(f"total budget must be non-negative, got {total}")
    fractions = (0.30, 0.30, 0.20, 0.10, 0.10)
    budgets = [int(round(f * total)) for f in fractions]
    # Fix rounding drift on the largest entry.
    budgets[0] += total - sum(budgets)
    return budgets


def real_param_skews(total: int = 500) -> dict:
    """The three budget distributions of §4.3.4.3 (Fig. 8(d), Table 6)."""
    num_items = 5

    def _exact_sum(budgets: List[int]) -> List[int]:
        budgets = list(budgets)
        budgets[0] += total - sum(budgets)
        return budgets

    uniform = _exact_sum([total // num_items] * num_items)
    ps_share = int(round(0.82 * total))
    large = _exact_sum([ps_share] + [(total - ps_share) // 4] * 4)
    moderate = _exact_sum(
        [
            int(round(0.30 * total)),
            int(round(0.30 * total)),
            int(round(0.20 * total)),
            int(round(0.10 * total)),
            int(round(0.10 * total)),
        ]
    )
    return {"uniform": uniform, "large_skew": large, "moderate_skew": moderate}
