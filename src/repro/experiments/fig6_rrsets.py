"""Fig. 6 — number of RR sets generated (memory proxy), config 1.

Paper shape: the TIM-based RR-SIM+/RR-CIM generate far more RR sets than the
IMM-based bundleGRD / item-disj / bundle-disj (TIM's θ is an order of
magnitude looser, and the Com-IC algorithms add forward/backward passes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments._two_item import (
    TwoItemRun,
    run_two_item_experiment,
    runs_as_rows,
)
from repro.experiments.fig5_runtime import COMIC_NETWORKS, FIG5_NETWORKS
from repro.experiments._two_item import TWO_ITEM_ALGORITHMS
from repro.experiments.runner import print_table


def run_fig6(
    networks: Sequence[str] = FIG5_NETWORKS,
    scale: float = 0.1,
    budget_vectors: Optional[Sequence[Tuple[int, int]]] = None,
    seed: int = 0,
    comic_networks: Sequence[str] = COMIC_NETWORKS,
) -> Dict[str, List[TwoItemRun]]:
    """Regenerate the four panels of Fig. 6 (RR-set counts per network)."""
    if budget_vectors is None:
        budget_vectors = [(10, 10), (30, 30), (50, 50)]
    panels: Dict[str, List[TwoItemRun]] = {}
    for network in networks:
        algorithms = [
            a
            for a in TWO_ITEM_ALGORITHMS
            if network in comic_networks or a not in ("RR-SIM+", "RR-CIM")
        ]
        panels[network] = run_two_item_experiment(
            config_id=1,
            network=network,
            scale=scale,
            budget_vectors=budget_vectors,
            algorithms=algorithms,
            num_samples=2,  # welfare is not the metric here; keep MC minimal
            seed=seed,
        )
    return panels


def rrset_series(runs: Sequence[TwoItemRun]) -> Dict[str, List[int]]:
    """Per-algorithm RR-set-count series (the plotted bars)."""
    series: Dict[str, List[int]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(run.num_rr_sets)
    return series


def main() -> None:  # pragma: no cover - manual entry point
    panels = run_fig6(scale=0.05, budget_vectors=[(10, 10)])
    for network, runs in panels.items():
        print_table(runs_as_rows(runs), title=f"Fig 6 — {network}")


if __name__ == "__main__":  # pragma: no cover
    main()
