"""Shared experiment plumbing: timing, seeding and table printing."""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Sequence


@contextmanager
def stopwatch(sink: Dict[str, float], key: str = "seconds") -> Iterator[None]:
    """Record wall-clock duration of a block into ``sink[key]``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        sink[key] = time.perf_counter() - start


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table (column order from row 0)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_fmt(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for idx, r in enumerate(rendered):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    """Print a table with an optional title banner."""
    if title:
        print(f"\n== {title} ==")
    print(format_table(rows))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)
