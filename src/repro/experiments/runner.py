"""Shared experiment plumbing: timing, seeding and table printing.

Timing and stdout go through :mod:`repro.obs` (:func:`repro.obs
.stopwatch` is re-exported here for the experiment scripts); RL008 keeps
raw clock reads and ``print`` out of this layer.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro import obs
from repro.obs import stopwatch

__all__ = ["format_table", "print_table", "stopwatch"]


def format_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render dict rows as an aligned text table (column order from row 0)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    rendered: List[List[str]] = [[str(c) for c in columns]]
    for row in rows:
        rendered.append([_fmt(row.get(c, "")) for c in columns])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(columns))]
    lines = []
    for idx, r in enumerate(rendered):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    """Print a table with an optional title banner."""
    if title:
        obs.emit(f"\n== {title} ==")
    obs.emit(format_table(rows))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    return str(value)
