"""Fig. 4 — expected social welfare of the five algorithms, configs 1–4.

The paper plots this on Douban-Movie; uniform-budget configs sweep both
items' budget 10→50, non-uniform configs fix ``b1 = 70`` and sweep
``b2`` 30→110.  Headline shapes:

* bundleGRD dominates item-disj by up to ~5× (Fig. 4(d));
* RR-SIM+/RR-CIM achieve welfare similar to bundleGRD (their allocations
  converge to copying seeds) but are far slower (that part is Fig. 5);
* in configs 1/2, item-disj ≡ bundle-disj; in configs 3/4, bundleGRD ≡
  bundle-disj (checked structurally in tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments._two_item import (
    TWO_ITEM_ALGORITHMS,
    TwoItemRun,
    run_two_item_experiment,
    runs_as_rows,
)
from repro.experiments.runner import print_table
from repro.graph.digraph import InfluenceGraph


def run_fig4(
    config_id: int,
    network: str = "douban-movie",
    scale: float = 0.1,
    budget_vectors: Optional[Sequence[Tuple[int, int]]] = None,
    algorithms: Sequence[str] = TWO_ITEM_ALGORITHMS,
    num_samples: int = 100,
    seed: int = 0,
    graph: Optional[InfluenceGraph] = None,
    backend: Optional[str] = None,
    ctx=None,
) -> List[TwoItemRun]:
    """Regenerate one panel of Fig. 4 (configs 1–4 → panels a–d).

    ``ctx`` selects the engine backend
    for every algorithm and the welfare evaluation (``None`` resolves
    ``$REPRO_RR_BACKEND``).
    """
    return run_two_item_experiment(
        config_id=config_id,
        network=network,
        scale=scale,
        budget_vectors=budget_vectors,
        algorithms=algorithms,
        num_samples=num_samples,
        seed=seed,
        graph=graph,
        backend=backend,
        ctx=ctx,
    )


def welfare_series(runs: Sequence[TwoItemRun]) -> Dict[str, List[float]]:
    """Per-algorithm welfare series over the budget sweep (the plotted lines)."""
    series: Dict[str, List[float]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(run.welfare)
    return series


def main() -> None:  # pragma: no cover - manual entry point
    for config_id in (1, 2, 3, 4):
        runs = run_fig4(config_id, scale=0.05, num_samples=50)
        print_table(runs_as_rows(runs), title=f"Fig 4 — Configuration {config_id}")


if __name__ == "__main__":  # pragma: no cover
    main()
