"""Aggregate benchmark artifacts into one report.

Every benchmark records its regenerated table under
``benchmarks/results/<name>.txt``.  This module stitches those artifacts into
a single markdown report (the raw material of EXPERIMENTS.md), ordered by the
paper's table/figure numbering, flagging any experiment whose artifact is
missing.

Usage::

    python -m repro.experiments.reporting [results_dir] [output.md]
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs

#: Artifact stems in the paper's presentation order, with display titles.
EXPERIMENT_ORDER: Tuple[Tuple[str, str], ...] = (
    ("table2_networks", "Table 2 — network statistics"),
    ("fig4_config1", "Fig. 4(a) — welfare, configuration 1"),
    ("fig4_config2", "Fig. 4(b) — welfare, configuration 2"),
    ("fig4_config3", "Fig. 4(c) — welfare, configuration 3"),
    ("fig4_config4", "Fig. 4(d) — welfare, configuration 4"),
    ("fig5_flixster", "Fig. 5(a) — running time, Flixster"),
    ("fig5_douban-book", "Fig. 5(b) — running time, Douban-Book"),
    ("fig5_douban-movie", "Fig. 5(c) — running time, Douban-Movie"),
    ("fig5_twitter", "Fig. 5(d) — running time, Twitter"),
    ("fig6_flixster", "Fig. 6(a) — RR sets, Flixster"),
    ("fig6_douban-book", "Fig. 6(b) — RR sets, Douban-Book"),
    ("fig6_douban-movie", "Fig. 6(c) — RR sets, Douban-Movie"),
    ("fig6_twitter", "Fig. 6(d) — RR sets, Twitter"),
    ("fig7_config5", "Fig. 7(a) — welfare, configuration 5"),
    ("fig7_config6", "Fig. 7(b) — welfare, configuration 6"),
    ("fig7_config7", "Fig. 7(c) — welfare, configuration 7"),
    ("fig7_config8", "Fig. 7(d) — welfare, configuration 8"),
    ("fig8a_items_runtime", "Fig. 8(a) — runtime vs number of items"),
    ("fig8bc_real_params", "Fig. 8(b,c) — real-Param budget sweep"),
    ("fig8d_budget_skew", "Fig. 8(d) — budget skew"),
    ("fig9_bdhs_orkut", "Fig. 9(a) — BDHS comparison, Orkut"),
    ("fig9_bdhs_douban-book", "Fig. 9(b) — BDHS comparison, Douban-Book"),
    ("fig9_bdhs_douban-movie", "Fig. 9(c) — BDHS comparison, Douban-Movie"),
    ("fig9d_scalability", "Fig. 9(d) — scalability"),
    ("table5_learning", "Table 5 — auction-learned parameters"),
    ("table6_rrset_counts", "Table 6 — RR-set count parity"),
    ("ablation_prima_reuse", "Ablation — PRIMA reuse vs per-budget IMM"),
    ("ablation_triggering_lt", "Ablation — LT triggering model"),
    ("ablation_personalized_noise", "Ablation — personalized noise"),
    ("ablation_bundle_discount", "Ablation — submodular bundle pricing"),
    ("ablation_marginal_greedy", "Ablation — naive marginal greedy"),
)


def collect_artifacts(results_dir: Path) -> Dict[str, str]:
    """Read every recorded artifact, keyed by stem."""
    artifacts: Dict[str, str] = {}
    if not results_dir.is_dir():
        return artifacts
    for path in sorted(results_dir.glob("*.txt")):
        artifacts[path.stem] = path.read_text().strip()
    return artifacts


def build_report(
    results_dir: Path,
    order: Sequence[Tuple[str, str]] = EXPERIMENT_ORDER,
) -> str:
    """Render the aggregated markdown report."""
    artifacts = collect_artifacts(results_dir)
    lines: List[str] = [
        "# Regenerated experiments",
        "",
        f"Collected from `{results_dir}`.",
        "",
    ]
    missing: List[str] = []
    for stem, title in order:
        lines.append(f"## {title}")
        lines.append("")
        body = artifacts.pop(stem, None)
        if body is None:
            missing.append(stem)
            lines.append("*(artifact missing — bench not yet run)*")
        else:
            lines.append("```")
            lines.append(body)
            lines.append("```")
        lines.append("")
    for stem in sorted(artifacts):
        lines.append(f"## (unindexed) {stem}")
        lines.append("")
        lines.append("```")
        lines.append(artifacts[stem])
        lines.append("```")
        lines.append("")
    if missing:
        lines.append(
            f"**Missing artifacts ({len(missing)}):** " + ", ".join(missing)
        )
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    report = build_report(results_dir)
    if len(argv) > 1:
        Path(argv[1]).write_text(report)
        obs.emit(f"wrote report to {argv[1]}")
    else:
        obs.emit(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
