"""SSA — Stop-and-Stare (Nguyen, Thai & Dinh, SIGMOD 2016), simplified.

SSA interleaves *stopping* (run max-cover on a batch of RR sets) with
*staring* (validate the chosen seed set's coverage on an independent batch);
it doubles the sample size until the greedy estimate and the validation
estimate agree, often stopping below IMM's worst-case sample bound.

The paper cites SSA as a state-of-the-art IM algorithm that — like IMM — is
**not prefix-preserving out of the box** (§4.2.3): its stopping condition
certifies only the budget it was run for, so the top-``k′`` prefix of its
seeds carries no guarantee for ``k′ < k``.  PRIMA is the fix.  We implement
SSA (validation-based doubling; the ε-decomposition of the original is
simplified to a single slack) so the repository contains the full landscape
of seed-selection algorithms the paper discusses, and so tests can
demonstrate the guarantee asymmetry concretely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection


@dataclass(frozen=True)
class SSAResult:
    """Seeds, influence estimates, and sampling statistics."""

    seeds: Tuple[int, ...]
    influence_estimate: float
    validation_estimate: float
    num_rr_sets: int
    rounds: int


def ssa(
    graph: InfluenceGraph,
    k: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    max_rounds: int = 20,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> SSAResult:
    """Select ``k`` seeds with (simplified) Stop-and-Stare.

    Stops when the validation estimate of the chosen seeds' influence is
    within ``(1 − ε/2)`` of the optimization estimate, doubling the batch
    otherwise.  ``max_rounds`` bounds the doubling (the full algorithm's
    theoretical cap is implied by its ε-budget split).  The removed
    legacy ``backend=`` keyword raises ``TypeError``; pass ``ctx=``.
    """
    ctx = ensure_context(ctx, backend=backend, rng=rng, caller="ssa")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = graph.num_nodes
    k = min(k, n)
    # k == 0 covers the empty graph (k is clamped to n); on a 1-node graph
    # the doubling loop runs normally and returns (0,).
    if k == 0:
        return SSAResult(
            seeds=(),
            influence_estimate=0.0,
            validation_estimate=0.0,
            num_rr_sets=0,
            rounds=0,
        )
    # Initial batch: enough for a crude concentration at the top level
    # (the original's Λ; simplified constants).
    initial = int(
        math.ceil(
            (2.0 + 2.0 / 3.0 * epsilon)
            * (ell * math.log(n) + math.log(2.0))
            / (epsilon * epsilon)
        )
    )
    optimization = RRCollection(graph, ctx=ctx)
    validation = RRCollection(graph, ctx=ctx)
    total = 0
    batch = initial
    for round_id in range(1, max_rounds + 1):
        optimization.extend_to(batch)
        validation.extend_to(batch)
        seeds, frac = node_selection(optimization, k)
        influence = n * frac
        check = n * validation.coverage_fraction(seeds)
        total = optimization.num_sets + validation.num_sets
        if check >= (1.0 - epsilon / 2.0) * influence and influence > 0:
            return SSAResult(
                seeds=tuple(seeds),
                influence_estimate=influence,
                validation_estimate=check,
                num_rr_sets=total,
                rounds=round_id,
            )
        batch *= 2
    seeds, frac = node_selection(optimization, k)
    return SSAResult(
        seeds=tuple(seeds),
        influence_estimate=n * frac,
        validation_estimate=n * validation.coverage_fraction(seeds),
        num_rr_sets=total,
        rounds=max_rounds,
    )
