"""Batched RR-set sampling: many reverse BFS walks per numpy call.

The sequential sampler (:func:`repro.rrset.rrgen.generate_rr_set`) visits one
node at a time, paying Python-interpreter overhead per node and per edge.
This module runs ``B`` reverse BFS walks *concurrently* by keeping the union
of all frontiers as flat ``(walk_id, node)`` arrays and expanding every
frontier in one vectorized step over the graph's reverse-CSR arrays:

1. **Gather** — for the flat frontier ``(w, v)`` pairs, look up each node's
   in-edge slice ``indptr[v] : indptr[v+1]`` and materialize all candidate
   edges at once with ``np.repeat`` over the per-node degrees (the standard
   "segmented gather": ``pos = repeat(starts - excl_cumsum, degs) +
   arange(total)``).
2. **Coin flips** — under IC, one uniform per candidate edge compared against
   the edge probability; under LT, one uniform per *frontier node* compared
   against the segmented cumulative in-weights, which selects at most one
   in-neighbor per node exactly as the sequential trigger-set sampler does.
3. **Dedup** — surviving ``(walk, source)`` pairs are filtered against a
   per-chunk ``visited`` bitmap and de-duplicated within the step via
   ``np.unique`` on the key ``walk * n + node``; the survivors form the next
   frontier and are appended to the flat member log.

After all frontiers die out, the member log is stably ``argsort``-ed by walk
id, yielding the concatenated members of every RR set plus per-walk lengths —
exactly the flat CSR layout :class:`repro.rrset.rrgen.RRCollection` stores.

Memory is bounded by chunking: walks are processed in groups of ``B`` such
that the ``B × n`` visited bitmap stays within ``_TARGET_CELLS`` bytes, so
arbitrarily large requests stream through a fixed-size working set.

Two extensions serve the TIM-based algorithms:

* :func:`rr_set_widths` computes every set's width ``w(R)`` (total in-degree
  of its members) in one vectorized pass over the flat output, which is what
  lets the KPT-estimation phases of TIM and the Com-IC baselines consume
  whole geometric rounds ``c_i`` as single batched calls.
* :func:`batch_generate_gap_rr_sets` is the GAP-aware variant used by
  RR-SIM+/RR-CIM: on top of the IC edge coins, every discovered node passes
  a node-level adoption coin whose probability is ``q_boosted`` when the
  node adopts the complementary item in the forward world paired with the
  walk (a per-world boolean bitmap row selected by ``world_ids``) and
  ``q_plain`` otherwise.  A failed *root* coin yields an empty RR set.

Generic :class:`~repro.diffusion.triggering.TriggeringModel` instances beyond
IC/LT are vectorized too, provided they expose an explicit per-node
``trigger_distribution`` (see :class:`TriggerCSR`): the distribution is
compiled once into flat candidate/member CSR arrays, and each (walk, node)
query selects one candidate with a single ``np.searchsorted`` over a
segment-shifted cumulative-probability array — the segmented-cumsum
generalization of the LT branch.  Models without a distribution still fall
back to the sequential path (``supports_batched`` tells callers which is
which).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.engine.context import BACKEND_ENV, BACKENDS, resolve_backend
from repro.diffusion.triggering import (
    IndependentCascadeTriggering,
    LinearThresholdTriggering,
    TriggerCSR,
    TriggeringModel,
    build_trigger_csr,
    has_trigger_distribution,
    needs_trigger_csr,
    sample_trigger_members,
    segmented_positions,
)
from repro.graph.digraph import InfluenceGraph

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "TriggerCSR",
    "batch_generate_gap_rr_sets",
    "batch_generate_rr_sets",
    "build_trigger_csr",
    "resolve_backend",
    "rr_set_widths",
    "sample_trigger_members",
    "supports_batched",
]

# BACKEND_ENV / BACKENDS / resolve_backend live in repro.engine.context
# since the EngineContext refactor; re-exported here for compatibility.

#: Upper bound on the per-chunk visited bitmap (cells = walks × nodes).
_TARGET_CELLS = 1 << 25  # 32M bools ≈ 32 MB


def supports_batched(triggering: Optional[TriggeringModel]) -> bool:
    """Whether the batched sampler covers this triggering model.

    ``None`` (the IC fast path), :class:`IndependentCascadeTriggering` and
    :class:`LinearThresholdTriggering` have dedicated vectorized branches;
    any other model is vectorized through the generic trigger-CSR sampler
    as soon as it overrides
    :meth:`~repro.diffusion.triggering.TriggeringModel.trigger_distribution`.
    Only models without an explicit distribution need the sequential
    fallback.
    """
    if triggering is None or isinstance(
        triggering, (IndependentCascadeTriggering, LinearThresholdTriggering)
    ):
        return True
    return has_trigger_distribution(triggering)


def rr_set_widths(
    graph: InfluenceGraph, members: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """Per-set widths ``w(R)`` — total in-degree of each set's members.

    ``(members, lengths)`` is the flat output of a batched sampler (or any
    CSR-over-sets layout).  Equivalent to
    ``np.add.reduceat(in_degree[members], offsets[:-1])`` but computed as
    differences of a cumulative sum, which stays correct for empty sets
    (``reduceat`` returns the *next* element on an empty segment instead of
    zero — GAP-aware sets are empty whenever the root adoption coin fails).
    """
    in_degree = np.diff(graph._in_indptr)
    cum = np.concatenate(
        ([0], np.cumsum(in_degree[members], dtype=np.int64))
    )
    offsets = np.concatenate(([0], np.cumsum(lengths, dtype=np.int64)))
    return cum[offsets[1:]] - cum[offsets[:-1]]


def batch_generate_rr_sets(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    count: int,
    triggering: Optional[TriggeringModel] = None,
    trigger_csr: Optional[TriggerCSR] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` RR sets with vectorized frontier expansion.

    Returns ``(members, lengths)`` where ``members`` is the int64
    concatenation of all RR sets in generation order and ``lengths[i]`` is
    the size of RR set ``i`` (``members.size == lengths.sum()``; every set
    includes its root, so lengths are >= 1).

    Generic triggering models are sampled through their compiled
    :class:`TriggerCSR`; pass ``trigger_csr`` to reuse a cached compilation
    (otherwise it is rebuilt here, one Python pass over the nodes).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not supports_batched(triggering):
        raise ValueError(
            f"triggering model {triggering!r} has no batched sampler; "
            "use the sequential backend"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    lt = isinstance(triggering, LinearThresholdTriggering)
    if trigger_csr is None and needs_trigger_csr(triggering):
        trigger_csr = build_trigger_csr(graph, triggering)
    chunk = max(1, min(count, _TARGET_CELLS // max(n, 1)))
    # One visited bitmap reused across chunks; each chunk clears only the
    # cells it touched (O(members) instead of an O(chunk * n) re-zero).
    visited = np.zeros((chunk, n), dtype=bool)
    member_parts = []
    length_parts = []
    remaining = count
    while remaining > 0:
        batch = min(chunk, remaining)
        nodes, lengths = _sample_chunk(
            graph, rng, batch, lt, visited, trigger_csr
        )
        # Members sorted by walk + per-walk lengths identify every visited
        # cell; clear them for the next chunk.
        visited[np.repeat(np.arange(batch), lengths), nodes] = False
        member_parts.append(nodes)
        length_parts.append(lengths)
        remaining -= batch
    return np.concatenate(member_parts), np.concatenate(length_parts)


def _gather_in_edges(
    graph: InfluenceGraph, frontier_n: np.ndarray
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]]:
    """Segmented gather of every candidate in-edge of a flat frontier.

    Returns ``(src, prob, degs, excl, total)`` — the flattened in-neighbor
    and probability arrays of all frontier nodes, the per-node degrees, the
    exclusive degree cumsum (segment starts) and the total edge count — or
    ``None`` when the frontier has no in-edges at all.
    """
    indptr = graph._in_indptr
    starts = indptr[frontier_n]
    degs = indptr[frontier_n + 1] - starts
    total = int(degs.sum())
    if total == 0:
        return None
    excl = np.cumsum(degs) - degs
    pos = segmented_positions(starts, degs)
    return graph._in_sources[pos], graph._in_probs[pos], degs, excl, total


def _sample_chunk(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    batch: int,
    lt: bool,
    visited: np.ndarray,
    trigger_csr: Optional[TriggerCSR] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run ``batch`` concurrent reverse BFS walks; see the module docstring.

    ``visited`` is a caller-owned scratch bitmap of shape ``(>= batch, n)``
    whose cells must all be False on entry; the caller clears the touched
    cells afterwards (identified by the returned members/lengths).  With
    ``trigger_csr`` given, each frontier node's live in-edges come from one
    vectorized trigger-distribution query instead of IC/LT coins.
    """
    n = graph.num_nodes

    roots = rng.integers(0, n, size=batch).astype(np.int64)
    visited[np.arange(batch), roots] = True

    walk_parts = [np.arange(batch, dtype=np.int64)]
    node_parts = [roots]
    frontier_w = walk_parts[0]
    frontier_n = roots

    while frontier_w.size:
        if trigger_csr is not None:
            src, degs = sample_trigger_members(
                trigger_csr, frontier_n, rng.random(frontier_n.size)
            )
            w = np.repeat(frontier_w, degs)
            s = src
        else:
            gathered = _gather_in_edges(graph, frontier_n)
            if gathered is None:
                break
            src, prob, degs, excl, total = gathered
            if lt:
                # One uniform per frontier node selects at most one
                # in-neighbor: edge j of node v is live iff
                # cum_{<j} <= draw < cum_{<=j}, the live-edge
                # characterization of LT.
                cum = np.cumsum(prob)
                # Zero-degree segments have excl == total; clip before
                # indexing (np.repeat with 0 repeats drops their entries
                # regardless).
                safe = np.minimum(excl, total - 1)
                seg_cum = cum - np.repeat(cum[safe] - prob[safe], degs)
                draw = np.repeat(rng.random(frontier_n.size), degs)
                live = (draw < seg_cum) & (draw >= seg_cum - prob)
            else:
                live = rng.random(total) < prob
            rep = np.repeat(frontier_w, degs)
            w = rep[live]
            s = src[live]
        if w.size:
            fresh = ~visited[w, s]
            w = w[fresh]
            s = s[fresh]
        if w.size == 0:
            break
        # Dedup (walk, node) pairs discovered twice within this step.
        key = np.unique(w * n + s)
        w = key // n
        s = key % n
        visited[w, s] = True
        walk_parts.append(w)
        node_parts.append(s)
        frontier_w = w
        frontier_n = s

    walks = np.concatenate(walk_parts)
    nodes = np.concatenate(node_parts)
    lengths = np.bincount(walks, minlength=batch)
    order = np.argsort(walks, kind="stable")
    return nodes[order], lengths


def batch_generate_gap_rr_sets(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    count: int,
    q_plain: float,
    q_boosted: float,
    boosted: np.ndarray,
    world_ids: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample ``count`` GAP-aware RR sets (Com-IC RIS) in batched form.

    ``boosted`` is a ``(num_worlds, n)`` boolean bitmap — row ``w`` marks
    the nodes adopting the complementary item in forward world ``w`` — and
    ``world_ids[j]`` is the world paired with walk ``j`` (the caller owns
    the pairing convention, including any cross-phase cursor).  Every
    discovered node must pass a node-level adoption coin with probability
    ``q_boosted`` if boosted in the walk's world, else ``q_plain``; a failed
    *root* coin yields an empty RR set (``lengths[j] == 0``), mirroring the
    "root must be willing to adopt" condition of the analysis.

    Returns ``(members, lengths)`` in the same flat layout as
    :func:`batch_generate_rr_sets`, except lengths may be zero.
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    boosted = np.asarray(boosted, dtype=bool)
    if boosted.ndim != 2 or boosted.shape[1] != n:
        raise ValueError(
            f"boosted bitmap must be (num_worlds, {n}), got {boosted.shape}"
        )
    world_ids = np.asarray(world_ids, dtype=np.int64)
    if world_ids.shape[0] != count:
        raise ValueError(
            f"need one world id per walk: {world_ids.shape[0]} != {count}"
        )
    if count == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    chunk = max(1, min(count, _TARGET_CELLS // max(n, 1)))
    visited = np.zeros((chunk, n), dtype=bool)
    member_parts = []
    length_parts = []
    done = 0
    while done < count:
        batch = min(chunk, count - done)
        nodes, lengths = _sample_gap_chunk(
            graph,
            rng,
            batch,
            q_plain,
            q_boosted,
            boosted,
            world_ids[done : done + batch],
            visited,
        )
        visited[np.repeat(np.arange(batch), lengths), nodes] = False
        member_parts.append(nodes)
        length_parts.append(lengths)
        done += batch
    return np.concatenate(member_parts), np.concatenate(length_parts)


def _sample_gap_chunk(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    batch: int,
    q_plain: float,
    q_boosted: float,
    boosted: np.ndarray,
    world_ids: np.ndarray,
    visited: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """GAP-aware sibling of :func:`_sample_chunk` (IC edge coins only).

    The node adoption coin is flipped once per *discovery attempt* (live
    edge into a not-yet-visited node), not once per node: a node that fails
    its coin stays unvisited and may be retried by later live edges.  This
    matches the sequential sampler
    (:func:`repro.baselines._comic_common._gap_rr_set`) exactly — both give
    a per-step inclusion probability of ``1 - (1 - q)^d`` for ``d`` live
    edges — so the two backends sample the same distribution.
    """
    n = graph.num_nodes

    roots = rng.integers(0, n, size=batch).astype(np.int64)
    q_root = np.where(boosted[world_ids, roots], q_boosted, q_plain)
    alive = rng.random(batch) < q_root
    frontier_w = np.flatnonzero(alive).astype(np.int64)
    frontier_n = roots[frontier_w]
    visited[frontier_w, frontier_n] = True

    walk_parts = [frontier_w]
    node_parts = [frontier_n]

    while frontier_w.size:
        gathered = _gather_in_edges(graph, frontier_n)
        if gathered is None:
            break
        src, prob, degs, _, total = gathered
        live = rng.random(total) < prob
        w = np.repeat(frontier_w, degs)[live]
        s = src[live]
        if w.size:
            fresh = ~visited[w, s]
            w = w[fresh]
            s = s[fresh]
        if w.size:
            q = np.where(boosted[world_ids[w], s], q_boosted, q_plain)
            adopt = rng.random(w.size) < q
            w = w[adopt]
            s = s[adopt]
        if w.size == 0:
            break
        # Dedup (walk, node) pairs discovered twice within this step.
        key = np.unique(w * n + s)
        w = key // n
        s = key % n
        visited[w, s] = True
        walk_parts.append(w)
        node_parts.append(s)
        frontier_w = w
        frontier_n = s

    walks = np.concatenate(walk_parts)
    nodes = np.concatenate(node_parts)
    lengths = np.bincount(walks, minlength=batch)
    order = np.argsort(walks, kind="stable")
    return nodes[order], lengths
