"""PRIMA — PRefix preserving Influence Maximization Algorithm (Algorithm 2).

PRIMA extends IMM to a *vector* of budgets ``b₁ ≥ b₂ ≥ ... ≥ b_{|b|}`` so that
one ordered seed set ``S_b`` (``b = b₁``) is returned whose every prefix of
size ``b_i`` is a ``(1 − 1/e − ε)``-approximation for budget ``b_i``, with
probability at least ``1 − 1/n^ℓ`` (Definition 1).  Three ingredients beyond
IMM:

* the union bound over budgets: ``ℓ′ = log_n(n^ℓ · |b|)`` replaces ``ℓ`` in
  the sample-size bounds (Lemma 9);
* RR-set *reuse* across budgets — the geometric search for budget ``b_{s+1}``
  continues on the collection accumulated for ``b_s``, and on a budget switch
  the seed set is the prefix of the previous ``NodeSelection`` output (no
  redundant selection calls);
* the final ``NodeSelection`` runs on RR sets regenerated *from scratch*
  (Chen 2018's fix [13] to IMM's martingale analysis), after which the top-b
  ordered seeds are returned.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.bounds import SampleBounds, adjusted_ell, ell_prime_for
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection


@dataclass(frozen=True)
class PRIMAResult:
    """Output of a PRIMA run.

    ``seeds`` is ordered: the top ``b_i`` nodes serve budget ``b_i``.
    ``num_rr_sets`` counts the *final* (from scratch) collection, the number
    reported in the paper's memory experiments (Fig. 6, Table 6);
    ``num_rr_sets_search`` counts the collection accumulated during the
    geometric search phase.
    """

    seeds: Tuple[int, ...]
    budgets: Tuple[int, ...]
    num_rr_sets: int
    num_rr_sets_search: int
    lower_bounds: Tuple[float, ...]
    coverage_fraction: float
    epsilon: float
    ell: float

    def seeds_for_budget(self, budget: int) -> Tuple[int, ...]:
        """The prefix of ``seeds`` serving the given budget."""
        if budget < 0 or budget > len(self.seeds):
            raise ValueError(
                f"budget {budget} outside [0, {len(self.seeds)}]"
            )
        return self.seeds[:budget]


def prima(
    graph: InfluenceGraph,
    budgets: Sequence[int],
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    ell_prime: Optional[float] = None,
    triggering=None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> PRIMAResult:
    """Run PRIMA (Algorithm 2 of the paper).

    Parameters
    ----------
    graph:
        The social network.
    budgets:
        Item budget vector ``b`` (any order; sorted non-increasing
        internally as Definition 1 requires).  Duplicates are fine.
    epsilon, ell:
        Approximation slack and confidence exponent; the paper's defaults are
        ``ε = 0.5``, ``ℓ = 1``.
    rng:
        Randomness source; defaults to a fixed-seed generator.
    ell_prime:
        Override for the union-bound exponent ``ℓ′`` (used by the Table 6
        experiment to run IMM and PRIMA with aligned failure probabilities).
    triggering:
        ``None`` (IC fast path), ``"ic"``, ``"lt"`` or a
        :class:`~repro.diffusion.triggering.TriggeringModel` — the paper's
        results carry over to any triggering model (§5).
    backend:
        Removed — raises ``TypeError``.  Select the RR sampling backend
        (``"sequential"`` | ``"batched"`` | ``"parallel"``) through
        ``ctx=EngineContext.create(backend=...)`` instead.
    ctx:
        :class:`repro.engine.EngineContext` carrying backend, RNG lineage
        and triggering in one object; mutually exclusive with ``rng``.

    Returns
    -------
    PRIMAResult
        Ordered seeds of size ``max(budgets)`` plus sampling statistics.
    """
    ctx = ensure_context(
        ctx, backend=backend, rng=rng, triggering=triggering, caller="prima"
    )
    if not budgets:
        raise ValueError("budgets must be non-empty")
    sorted_budgets = sorted((int(b) for b in budgets), reverse=True)
    if sorted_budgets[-1] < 0:
        raise ValueError(f"budgets must be non-negative, got {sorted_budgets}")
    n = graph.num_nodes
    b_max = min(sorted_budgets[0], n)
    # b_max == 0 covers the empty graph (budgets are clamped to n); a 1-node
    # graph runs the full machinery and returns (0,) like any other graph.
    if b_max == 0:
        return PRIMAResult(
            seeds=(),
            budgets=tuple(sorted_budgets),
            num_rr_sets=0,
            num_rr_sets_search=0,
            lower_bounds=(),
            coverage_fraction=0.0,
            epsilon=epsilon,
            ell=ell,
        )
    lifted_ell = adjusted_ell(ell, n)
    if ell_prime is None:
        ell_prime = ell_prime_for(lifted_ell, n, len(sorted_budgets))
    bounds = SampleBounds(n=n, epsilon=epsilon, ell_prime=ell_prime)
    eps_prime = bounds.epsilon_prime

    collection = RRCollection(graph, ctx=ctx)
    # Duplicate budget values add nothing (identical λ*), and re-running the
    # coverage loop on a grown collection would inflate θ; process each
    # distinct value once.  The union bound ℓ′ above still uses the full |b|.
    distinct_budgets = sorted(set(sorted_budgets), reverse=True)
    s = 0  # index into distinct_budgets
    i = 1  # geometric search level
    budget_switch = False
    last_selection: Optional[List[int]] = None
    lower_bounds: List[float] = []
    theta_final = 0.0
    imax = bounds.max_search_level

    with obs.span(
        "rrset.prima", budgets=len(sorted_budgets), b_max=int(b_max),
        backend=ctx.backend,
    ):
        with obs.span("rrset.prima.search"):
            while i <= imax and s < len(distinct_budgets):
                k = min(distinct_budgets[s], n)
                x = n / (2.0**i)
                theta_i = bounds.lambda_prime(k) / x
                collection.extend_to(int(math.ceil(theta_i)))
                if budget_switch and last_selection is not None:
                    seeds_k = last_selection[:k]
                    frac = collection.coverage_fraction(seeds_k)
                else:
                    seeds_k, frac = node_selection(collection, k)
                    last_selection = seeds_k
                if n * frac >= (1.0 + eps_prime) * x:
                    lb = n * frac / (1.0 + eps_prime)
                    lower_bounds.append(lb)
                    theta_k = bounds.lambda_star(k) / lb
                    collection.extend_to(int(math.ceil(theta_k)))
                    theta_final = max(theta_final, theta_k)
                    s += 1
                    budget_switch = True
                else:
                    i += 1
                    budget_switch = False

            if s < len(distinct_budgets):
                # Geometric search exhausted with budgets remaining: fall
                # back to the most conservative lower bound LB = 1 for the
                # current (largest remaining λ*) budget; this dominates all
                # remaining budgets since budgets are sorted non-increasing
                # and λ*_k is monotone in k.
                k = min(distinct_budgets[s], n)
                theta_k = bounds.lambda_star(k) / 1.0
                theta_final = max(theta_final, theta_k)
                lower_bounds.extend([1.0] * (len(distinct_budgets) - s))

        search_count = collection.num_sets

        # Chen-2018 fix: the final NodeSelection must run on RR sets that
        # were *not* used to determine θ — regenerate the whole collection.
        with obs.span(
            "rrset.prima.final", theta=int(math.ceil(theta_final))
        ):
            collection.reset()
            collection.extend_to(int(math.ceil(theta_final)))
            final_seeds, final_frac = node_selection(collection, b_max)

    return PRIMAResult(
        seeds=tuple(final_seeds),
        budgets=tuple(sorted_budgets),
        num_rr_sets=collection.num_sets,
        num_rr_sets_search=search_count,
        lower_bounds=tuple(lower_bounds),
        coverage_fraction=final_frac,
        epsilon=epsilon,
        ell=ell,
    )
