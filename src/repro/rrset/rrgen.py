"""Random reverse-reachable (RR) set generation and flat storage.

An RR set is sampled by choosing a node ``v`` uniformly at random and running
a *reverse* BFS from it, where each incoming edge ``(u, v')`` of a visited
node ``v'`` is live independently with probability ``p_{u v'}`` (Borgs et al.
[6]).  The defining property is

    σ(S) = n · E[ 1{ S ∩ R ≠ ∅ } ]

for every seed set ``S``, which turns influence maximization into max-coverage
over a collection of RR sets.

Two samplers produce identical distributions:

* ``backend="sequential"`` — :func:`generate_rr_set`, one Python-level BFS
  per set.  Kept as the exact-equivalence reference: for a fixed RNG seed it
  reproduces the historical per-set RNG stream bit for bit.
* ``backend="batched"`` — :mod:`repro.rrset.batch`, which expands many
  frontiers per numpy call (flat ``(walk, node)`` arrays over the reverse
  CSR).  The default; an order of magnitude faster on non-trivial graphs.

:class:`RRCollection` stores the collection *flat*: one concatenated int64
``members`` array plus an ``offsets`` array (CSR over sets), instead of a
Python list of arrays.  The inverted index (node -> RR-set ids) that greedy
``NodeSelection`` needs is rebuilt lazily in bulk — one ``argsort`` of the
members by node plus a ``bincount`` for the indptr — rather than via
per-element list appends; with the geometric sample-size growth of
IMM/PRIMA's search the amortized rebuild cost stays linear-log in the total
width.  ``w(R)`` totals are tracked for the paper's running-time accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.diffusion.triggering import (
    TriggeringModel,
    needs_trigger_csr,
    segmented_positions,
)
from repro.engine.context import EngineContext, is_batched
from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import (
    batch_generate_rr_sets,
    build_trigger_csr,
    supports_batched,
)

_RR_SETS_GENERATED = obs.counter(
    "repro_rrset_generated_total",
    "RR sets sampled into collections, by sampling backend",
    labels=("backend",),
)
_PHASE_SECONDS = obs.histogram(
    "repro_engine_phase_seconds",
    "Wall-clock of engine phases (sampling, selection, kpt, forward)",
    labels=("phase",),
)


def generate_rr_set(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    root: Optional[int] = None,
    triggering: Optional[TriggeringModel] = None,
) -> np.ndarray:
    """Sample one RR set; returns the visited nodes (root included).

    ``root`` defaults to a uniformly random node.  With ``triggering`` given,
    each visited node's live in-edges come from one sampled trigger set
    (supporting LT and any other triggering model); the default is the IC
    fast path (independent per-edge coins).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if root is None:
        root = int(rng.integers(0, n))
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            if triggering is not None:
                live_sources = triggering.sample_trigger_set(graph, v, rng)
            else:
                sources = graph.in_neighbors(v)
                deg = sources.shape[0]
                if deg == 0:
                    continue
                probs = graph.in_probabilities(v)
                coins = rng.random(deg)
                live_sources = sources[coins < probs]
            for u in live_sources:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


def build_inverted_index(
    members: np.ndarray, offsets: np.ndarray, num_nodes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Bulk-build the node -> RR-set-id inverted index over flat storage.

    Returns ``(idx_sets, idx_indptr)``: RR-set ids grouped by node (stable —
    ascending set id within each node), CSR over nodes.  One stable
    ``argsort`` of the members by node plus a ``bincount`` for the indptr;
    shared by :class:`RRCollection` and the ad-hoc greedy in
    :mod:`repro.rrset.node_selection`.
    """
    num_sets = offsets.shape[0] - 1
    set_ids = np.repeat(
        np.arange(num_sets, dtype=np.int64), np.diff(offsets)
    )
    order = np.argsort(members, kind="stable")
    idx_sets = set_ids[order]
    counts = np.bincount(members, minlength=num_nodes)
    idx_indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=idx_indptr[1:])
    return idx_sets, idx_indptr


def merge_inverted_index(
    idx_sets: np.ndarray,
    idx_indptr: np.ndarray,
    delta_sets: np.ndarray,
    delta_indptr: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge a delta inverted index into an existing one, per node.

    Both operands are node -> RR-set-id CSRs over the same node universe;
    every id in ``delta_sets`` must exceed every id in ``idx_sets`` (the
    delta covers *appended* sets), so per-node concatenation — old entries
    then delta entries — preserves the ascending-id invariant of
    :func:`build_inverted_index`.  Cost is linear in the output: the delta
    was argsorted on its own, the old entries are copied, never re-sorted.
    This is what makes θ-extension of a loaded sketch store (and IMM's
    geometric search generally) cheaper than rebuilding the index from
    scratch at every level.
    """
    old_counts = np.diff(idx_indptr)
    delta_counts = np.diff(delta_indptr)
    merged_indptr = np.zeros_like(idx_indptr)
    np.cumsum(old_counts + delta_counts, out=merged_indptr[1:])
    merged = np.empty(idx_sets.shape[0] + delta_sets.shape[0], dtype=np.int64)
    old_pos = segmented_positions(merged_indptr[:-1], old_counts)
    delta_pos = segmented_positions(
        merged_indptr[:-1] + old_counts, delta_counts
    )
    merged[old_pos] = idx_sets
    merged[delta_pos] = delta_sets
    return merged, merged_indptr


class _SetsView(Sequence[np.ndarray]):
    """Read-only sequence view over a collection's flat member storage."""

    __slots__ = ("_collection",)

    def __init__(self, collection: "RRCollection"):
        self._collection = collection

    def __len__(self) -> int:
        return self._collection.num_sets

    def __getitem__(self, rr_id: int) -> np.ndarray:
        coll = self._collection
        if isinstance(rr_id, slice):
            return [self[i] for i in range(*rr_id.indices(len(self)))]
        if rr_id < 0:
            rr_id += len(self)
        if not 0 <= rr_id < len(self):
            raise IndexError(f"RR set id {rr_id} out of range [0, {len(self)})")
        start = coll._offsets[rr_id]
        end = coll._offsets[rr_id + 1]
        view = coll._members[start:end]
        view.flags.writeable = False
        return view


class RRCollection:
    """A growing collection of RR sets in flat CSR form, with inverted index.

    ``members[offsets[i] : offsets[i+1]]`` are the nodes of RR set ``i``.
    The inverted index maps each node to the ids of RR sets containing it;
    ``cover_counts[u]`` is its length.  Cover counts are maintained
    incrementally (bulk ``bincount`` per generation batch); the index itself
    is rebuilt lazily in bulk on first query after new sets arrive, so
    repeated ``NodeSelection`` calls (IMM's geometric search) pay the rebuild
    only once per sample-size level.

    Parameters
    ----------
    graph, rng, triggering:
        As before: the network, the randomness source, and an optional
        triggering model (``None`` = IC fast path).
    backend:
        ``"sequential"`` (per-set Python BFS, exact historical RNG stream),
        ``"batched"`` (vectorized frontier expansion), or ``None`` to resolve
        from ``$REPRO_RR_BACKEND`` (default batched).  Triggering models
        without a batched sampler fall back to sequential automatically.
    ctx:
        A :class:`repro.engine.EngineContext` supplying rng/backend/
        triggering in one object (the supported spelling since the engine
        refactor).  Mutually exclusive with ``rng``/``backend``; an
        explicit ``triggering`` argument is allowed only when the context
        carries none (two triggering sources are a ``TypeError``).
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        rng: Optional[np.random.Generator] = None,
        triggering: Optional[TriggeringModel] = None,
        backend: Optional[str] = None,
        *,
        ctx=None,
    ):
        if ctx is not None:
            if rng is not None or backend is not None:
                raise TypeError(
                    "RRCollection: pass either ctx= or rng=/backend=, "
                    "not both"
                )
            if triggering is not None and ctx.triggering is not None:
                raise TypeError(
                    "RRCollection: the context already carries a "
                    "triggering model; pass either ctx= or triggering=, "
                    "not both"
                )
            if triggering is None:
                triggering = ctx.triggering
        else:
            # Backend/seed resolution happens in the engine, nowhere else:
            # the legacy (rng, backend) spelling builds an equivalent
            # context and reads the resolved fields back.
            ctx = EngineContext.create(backend=backend, rng=rng)
        if triggering is not None:
            triggering.validate(graph)
        self._graph = graph
        self._rng = ctx.rng
        self._triggering = triggering
        self._backend = ctx.backend
        # Compiled trigger distributions for generic triggering models
        # (built lazily on the first batched generate, then reused).
        self._trigger_csr = None
        n = graph.num_nodes
        self._members = np.empty(1024, dtype=np.int64)
        self._num_members = 0
        self._offsets = np.zeros(1025, dtype=np.int64)
        self._num_sets = 0
        self._cover_counts = np.zeros(n, dtype=np.int64)
        self._total_width = 0  # Σ w(R): nodes visited, for time accounting
        # Inverted index (lazy): RR-set ids grouped by node, CSR over nodes.
        # ``_idx_num_sets`` is the prefix of sets the current index covers;
        # rebuilds past it are incremental (delta argsort + per-node merge).
        self._idx_sets = np.empty(0, dtype=np.int64)
        self._idx_indptr = np.zeros(n + 1, dtype=np.int64)
        self._idx_num_sets = 0
        self._index_dirty = False
        # Epoch-stamped scratch for coverage_fraction: stamp[i] == epoch
        # means "set i covered in the current query" — no per-call allocation.
        self._cov_stamp = np.zeros(1024, dtype=np.int64)
        self._cov_epoch = 0

    @property
    def graph(self) -> InfluenceGraph:
        """The graph RR sets are sampled from."""
        return self._graph

    @property
    def backend(self) -> str:
        """The sampling backend this collection uses."""
        return self._backend

    @property
    def num_sets(self) -> int:
        """Number of RR sets generated so far ``|R|``."""
        return self._num_sets

    @property
    def total_width(self) -> int:
        """Total size of all RR sets (proxy for generation work)."""
        return self._total_width

    @property
    def cover_counts(self) -> np.ndarray:
        """Per-node counts of RR sets containing the node (read-only)."""
        view = self._cover_counts.view()
        view.flags.writeable = False
        return view

    def sets(self) -> Sequence[np.ndarray]:
        """The RR sets themselves (read-only views into the flat storage)."""
        return _SetsView(self)

    def containing(self, node: int) -> np.ndarray:
        """Ids of RR sets containing ``node`` (read-only view)."""
        self._ensure_index()
        start = self._idx_indptr[node]
        end = self._idx_indptr[node + 1]
        view = self._idx_sets[start:end]
        view.flags.writeable = False
        return view

    def flat_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The member/offset CSR over sets, without touching the index.

        Live views — do not mutate.  This is the cheap export hook for
        callers that only need the raw sets (the sharded store builder
        ships these across process boundaries; the merged index is built
        once on the combined arrays instead of once per shard).
        """
        return (
            self._members[: self._num_members],
            self._offsets[: self._num_sets + 1],
        )

    def selection_arrays(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Flat arrays for vectorized NodeSelection.

        Returns ``(members, offsets, idx_sets, idx_indptr)``: the member/
        offset CSR over sets plus the inverted-index CSR over nodes.  All
        four are live views — do not mutate.
        """
        self._ensure_index()
        return (
            self._members[: self._num_members],
            self._offsets[: self._num_sets + 1],
            self._idx_sets,
            self._idx_indptr,
        )

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def generate(self, count: int) -> None:
        """Generate ``count`` additional RR sets with the active backend."""
        if count <= 0:
            return
        batched = is_batched(self._backend) and supports_batched(
            self._triggering
        )
        with obs.span(
            "rrset.generate",
            count=int(count),
            backend="batched" if batched else "sequential",
        ), _PHASE_SECONDS.timer(phase="sampling"):
            if batched:
                if self._trigger_csr is None and needs_trigger_csr(
                    self._triggering
                ):
                    self._trigger_csr = build_trigger_csr(
                        self._graph, self._triggering
                    )
                members, lengths = batch_generate_rr_sets(
                    self._graph,
                    self._rng,
                    count,
                    triggering=self._triggering,
                    trigger_csr=self._trigger_csr,
                )
            else:
                sets = [
                    generate_rr_set(
                        self._graph, self._rng, triggering=self._triggering
                    )
                    for _ in range(count)
                ]
                members = np.concatenate(sets)
                lengths = np.fromiter(
                    (rr.shape[0] for rr in sets), dtype=np.int64, count=count
                )
            self._append_flat(members, lengths)
        _RR_SETS_GENERATED.inc(
            count, backend="batched" if batched else "sequential"
        )

    def add_sets(self, sets: Sequence[Sequence[int]]) -> None:
        """Bulk-insert explicit RR sets (tests and ad-hoc collections).

        Members are de-duplicated (and sorted) per set: an RR set is a set,
        and the index/coverage machinery counts each (set, node) pair once.
        """
        if not len(sets):
            return
        arrays = [np.unique(np.asarray(s, dtype=np.int64)) for s in sets]
        members = (
            np.concatenate(arrays) if arrays else np.empty(0, dtype=np.int64)
        )
        lengths = np.fromiter(
            (a.shape[0] for a in arrays), dtype=np.int64, count=len(arrays)
        )
        self._append_flat(members, lengths)

    def extend_to(self, target: int) -> None:
        """Generate RR sets until ``num_sets >= target``."""
        missing = int(np.ceil(target)) - self.num_sets
        if missing > 0:
            self.generate(missing)

    def _append_flat(self, members: np.ndarray, lengths: np.ndarray) -> None:
        """Append pre-sampled sets given flat members + per-set lengths."""
        new_members = int(members.shape[0])
        new_sets = int(lengths.shape[0])
        self._reserve(new_members, new_sets)
        self._members[
            self._num_members : self._num_members + new_members
        ] = members
        base = self._offsets[self._num_sets]
        self._offsets[
            self._num_sets + 1 : self._num_sets + 1 + new_sets
        ] = base + np.cumsum(lengths)
        self._num_members += new_members
        self._num_sets += new_sets
        self._total_width += new_members
        if new_members:
            self._cover_counts += np.bincount(
                members, minlength=self._graph.num_nodes
            )
        self._index_dirty = True

    def _reserve(self, extra_members: int, extra_sets: int) -> None:
        need_m = self._num_members + extra_members
        if need_m > self._members.shape[0]:
            cap = max(need_m, 2 * self._members.shape[0])
            grown = np.empty(cap, dtype=np.int64)
            grown[: self._num_members] = self._members[: self._num_members]
            self._members = grown
        need_s = self._num_sets + 1 + extra_sets
        if need_s > self._offsets.shape[0]:
            cap = max(need_s, 2 * self._offsets.shape[0])
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._num_sets + 1] = self._offsets[: self._num_sets + 1]
            self._offsets = grown
        if need_s > self._cov_stamp.shape[0]:
            cap = max(need_s, 2 * self._cov_stamp.shape[0])
            grown = np.zeros(cap, dtype=np.int64)
            grown[: self._cov_stamp.shape[0]] = self._cov_stamp
            self._cov_stamp = grown

    def _ensure_index(self) -> None:
        """Bring the inverted index up to date if new sets arrived.

        First build is a full bulk pass; subsequent growth (IMM's geometric
        levels, θ-extension of a loaded store) argsorts only the appended
        members and merges them per node, so the amortized cost stays
        linear in the *new* width instead of the total.
        """
        if not self._index_dirty:
            return
        if self._idx_num_sets == 0 or self._idx_num_sets > self._num_sets:
            self._idx_sets, self._idx_indptr = build_inverted_index(
                self._members[: self._num_members],
                self._offsets[: self._num_sets + 1],
                self._graph.num_nodes,
            )
        else:
            base = self._offsets[self._idx_num_sets]
            delta_members = self._members[base : self._num_members]
            delta_offsets = (
                self._offsets[self._idx_num_sets : self._num_sets + 1] - base
            )
            delta_sets, delta_indptr = build_inverted_index(
                delta_members, delta_offsets, self._graph.num_nodes
            )
            delta_sets += self._idx_num_sets
            self._idx_sets, self._idx_indptr = merge_inverted_index(
                self._idx_sets, self._idx_indptr, delta_sets, delta_indptr
            )
        self._idx_num_sets = self._num_sets
        self._index_dirty = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def coverage_fraction(self, seeds: Sequence[int]) -> float:
        """``F_R(S)``: fraction of RR sets intersecting ``seeds``.

        Uses an epoch-stamped scratch array instead of allocating a fresh
        boolean mask per call — PRIMA's geometric search calls this in a
        tight loop on budget switches.
        """
        if self.num_sets == 0:
            return 0.0
        self._ensure_index()
        self._cov_epoch += 1
        epoch = self._cov_epoch
        stamp = self._cov_stamp
        covered = 0
        for s in seeds:
            ids = self.containing(int(s))
            newly = ids[stamp[ids] != epoch]
            stamp[newly] = epoch
            covered += int(newly.shape[0])
        return covered / self.num_sets

    def reset(self) -> None:
        """Drop all RR sets (used by the regenerate-from-scratch fix)."""
        self._num_members = 0
        self._num_sets = 0
        self._offsets[:1] = 0
        self._cover_counts[:] = 0
        self._total_width = 0
        self._idx_sets = np.empty(0, dtype=np.int64)
        self._idx_indptr = np.zeros(self._graph.num_nodes + 1, dtype=np.int64)
        self._idx_num_sets = 0
        self._index_dirty = False

    # ------------------------------------------------------------------
    # Flat-state export / import (the persistence hooks of repro.store)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Snapshot the collection as plain arrays for persistence.

        Returns copies (safe to hold across further growth) of the member/
        offset CSR, the per-node cover counts, and the inverted index
        (brought up to date first).  The RNG bit-generator state rides along
        so a restored collection continues the exact sampling stream —
        byte-identical θ-extension after a save/load round trip.
        """
        self._ensure_index()
        return {
            "members": self._members[: self._num_members].copy(),
            "offsets": self._offsets[: self._num_sets + 1].copy(),
            "cover_counts": self._cover_counts.copy(),
            "idx_sets": self._idx_sets.copy(),
            "idx_indptr": self._idx_indptr.copy(),
            "total_width": int(self._total_width),
            "rng_state": self._rng.bit_generator.state,
        }

    @classmethod
    def from_flat(
        cls,
        graph: InfluenceGraph,
        rng: Optional[np.random.Generator],
        members: np.ndarray,
        offsets: np.ndarray,
        *,
        index: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        triggering: Optional[TriggeringModel] = None,
        # repro-lint: disable=RL002 forwarded verbatim into cls()'s resolution
        backend: Optional[str] = None,
        ctx=None,
    ) -> "RRCollection":
        """Rebuild a collection from flat CSR arrays without regeneration.

        ``members``/``offsets`` follow the layout of
        :meth:`selection_arrays`; ``index`` optionally supplies a matching
        ``(idx_sets, idx_indptr)`` inverted index (e.g. from a loaded
        sketch store), in which case later growth updates it incrementally
        instead of rebuilding.  Read-only inputs (memory-mapped store
        arrays) are copied into writable growth buffers.
        """
        collection = cls(
            graph, rng, triggering=triggering, backend=backend, ctx=ctx
        )
        members = np.asarray(members, dtype=np.int64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.shape[0] < 1 or offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if members.shape[0] != int(offsets[-1]):
            raise ValueError(
                f"members length {members.shape[0]} does not match "
                f"offsets[-1] == {int(offsets[-1])}"
            )
        lengths = np.diff(offsets)
        collection._append_flat(members, lengths)
        if index is not None:
            idx_sets, idx_indptr = index
            collection._idx_sets = np.asarray(idx_sets, dtype=np.int64).copy()
            collection._idx_indptr = np.asarray(
                idx_indptr, dtype=np.int64
            ).copy()
            collection._idx_num_sets = collection._num_sets
            collection._index_dirty = False
        return collection

    @property
    def rng(self) -> np.random.Generator:
        """The collection's randomness source (for state persistence)."""
        return self._rng
