"""Random reverse-reachable (RR) set generation.

An RR set is sampled by choosing a node ``v`` uniformly at random and running
a *reverse* BFS from it, where each incoming edge ``(u, v')`` of a visited
node ``v'`` is live independently with probability ``p_{u v'}`` (Borgs et al.
[6]).  The defining property is

    σ(S) = n · E[ 1{ S ∩ R ≠ ∅ } ]

for every seed set ``S``, which turns influence maximization into max-coverage
over a collection of RR sets.

:class:`RRCollection` owns a growing collection along with the inverted index
(node -> RR-set ids) that the greedy ``NodeSelection`` needs, and tracks the
total edge work ``w(R)`` used in the paper's running-time accounting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.diffusion.triggering import TriggeringModel
from repro.graph.digraph import InfluenceGraph


def generate_rr_set(
    graph: InfluenceGraph,
    rng: np.random.Generator,
    root: Optional[int] = None,
    triggering: Optional[TriggeringModel] = None,
) -> np.ndarray:
    """Sample one RR set; returns the visited nodes (root included).

    ``root`` defaults to a uniformly random node.  With ``triggering`` given,
    each visited node's live in-edges come from one sampled trigger set
    (supporting LT and any other triggering model); the default is the IC
    fast path (independent per-edge coins).
    """
    n = graph.num_nodes
    if n == 0:
        raise ValueError("cannot sample an RR set from an empty graph")
    if root is None:
        root = int(rng.integers(0, n))
    visited = {root}
    frontier = [root]
    while frontier:
        next_frontier: List[int] = []
        for v in frontier:
            if triggering is not None:
                live_sources = triggering.sample_trigger_set(graph, v, rng)
            else:
                sources = graph.in_neighbors(v)
                deg = sources.shape[0]
                if deg == 0:
                    continue
                probs = graph.in_probabilities(v)
                coins = rng.random(deg)
                live_sources = sources[coins < probs]
            for u in live_sources:
                u = int(u)
                if u not in visited:
                    visited.add(u)
                    next_frontier.append(u)
        frontier = next_frontier
    return np.fromiter(visited, dtype=np.int64, count=len(visited))


class RRCollection:
    """A growing collection of RR sets with an inverted index.

    The inverted index maps each node to the ids of RR sets containing it;
    ``cover_counts[u]`` is its length.  Both are maintained incrementally so
    repeated ``NodeSelection`` calls (IMM's geometric search) stay linear in
    the *new* work only.
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        rng: np.random.Generator,
        triggering: Optional[TriggeringModel] = None,
    ):
        if triggering is not None:
            triggering.validate(graph)
        self._graph = graph
        self._rng = rng
        self._triggering = triggering
        self._sets: List[np.ndarray] = []
        self._index: List[List[int]] = [[] for _ in range(graph.num_nodes)]
        self._cover_counts = np.zeros(graph.num_nodes, dtype=np.int64)
        self._total_width = 0  # Σ w(R): edges examined, for time accounting

    @property
    def graph(self) -> InfluenceGraph:
        """The graph RR sets are sampled from."""
        return self._graph

    @property
    def num_sets(self) -> int:
        """Number of RR sets generated so far ``|R|``."""
        return len(self._sets)

    @property
    def total_width(self) -> int:
        """Total size of all RR sets (proxy for generation work)."""
        return self._total_width

    @property
    def cover_counts(self) -> np.ndarray:
        """Per-node counts of RR sets containing the node (read-only)."""
        view = self._cover_counts.view()
        view.flags.writeable = False
        return view

    def sets(self) -> Sequence[np.ndarray]:
        """The RR sets themselves (do not mutate)."""
        return self._sets

    def containing(self, node: int) -> Sequence[int]:
        """Ids of RR sets containing ``node``."""
        return self._index[node]

    def generate(self, count: int) -> None:
        """Generate ``count`` additional RR sets."""
        for _ in range(count):
            rr = generate_rr_set(
                self._graph, self._rng, triggering=self._triggering
            )
            rr_id = len(self._sets)
            self._sets.append(rr)
            self._total_width += int(rr.shape[0])
            for u in rr:
                u = int(u)
                self._index[u].append(rr_id)
                self._cover_counts[u] += 1

    def extend_to(self, target: int) -> None:
        """Generate RR sets until ``num_sets >= target``."""
        missing = int(np.ceil(target)) - self.num_sets
        if missing > 0:
            self.generate(missing)

    def coverage_fraction(self, seeds: Sequence[int]) -> float:
        """``F_R(S)``: fraction of RR sets intersecting ``seeds``."""
        if self.num_sets == 0:
            return 0.0
        covered = np.zeros(self.num_sets, dtype=bool)
        for s in seeds:
            covered[self._index[int(s)]] = True
        return float(covered.sum() / self.num_sets)

    def reset(self) -> None:
        """Drop all RR sets (used by the regenerate-from-scratch fix)."""
        self._sets = []
        self._index = [[] for _ in range(self._graph.num_nodes)]
        self._cover_counts[:] = 0
        self._total_width = 0
