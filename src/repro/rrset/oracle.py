"""Influence oracle built on PRIMA's prefix-preserving order.

§2.1 motivates prefix preservation through the *influence oracle* use case
(Cohen et al.'s SKIM): preprocess once, then answer seed queries for any
budget without recomputation.  PRIMA provides exactly that on IMM-strength
machinery: one run for a maximum budget yields an ordered seed list whose
every prefix is ``(1 − 1/e − ε)``-approximate for its size (Definition 1,
instantiated with the budget vector ``(b, b−1, ..., 1)``).

:class:`InfluenceOracle` wraps the run and keeps the final RR collection so
it can also answer *spread estimation* queries (``σ(S) ≈ n · F_R(S)``) for
arbitrary seed sets, and hand bundleGRD a precomputed ``seed_order`` so
repeated allocations on the same graph cost nothing beyond the preprocessing.

The preprocessing is process-bound until persisted: :meth:`InfluenceOracle.
save` snapshots the seed order, the estimation collection and the sampling
RNG state into a :class:`~repro.store.sketch_store.SketchStore`, and
:class:`~repro.store.service.OracleService` serves the same queries from
the file in any later process (memory-mapped, extendable via
:func:`~repro.store.builder.extend_store`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.prima import PRIMAResult, prima
from repro.rrset.rrgen import RRCollection


class InfluenceOracle:
    """Preprocess a graph once; answer seed and spread queries forever.

    Parameters
    ----------
    graph:
        The social network.
    max_budget:
        Largest seed budget the oracle must serve.  Preprocessing runs PRIMA
        with the full budget vector ``(max_budget, ..., 2, 1)`` so *every*
        prefix size carries the approximation guarantee.
    epsilon, ell:
        PRIMA parameters (paper defaults).
    rng:
        Randomness for RR sampling.
    estimation_rr_sets:
        Size of the retained RR collection used for spread queries (an
        independent sample, so estimates are unbiased for any queried set).
    """

    def __init__(
        self,
        graph: InfluenceGraph,
        max_budget: int,
        epsilon: float = 0.5,
        ell: float = 1.0,
        rng: Optional[np.random.Generator] = None,
        estimation_rr_sets: int = 10_000,
        triggering=None,
        backend: Optional[str] = None,
        *,
        ctx=None,
    ):
        if max_budget <= 0:
            raise ValueError(f"max_budget must be positive, got {max_budget}")
        ctx = ensure_context(
            ctx,
            backend=backend,
            rng=rng,
            triggering=triggering,
            caller="InfluenceOracle",
        )
        self._graph = graph
        self._triggering = (
            triggering if triggering is not None else ctx.triggering
        )
        self._max_budget = min(max_budget, graph.num_nodes)
        budget_vector = list(range(self._max_budget, 0, -1))
        self._prima: PRIMAResult = prima(
            graph,
            budget_vector,
            epsilon=epsilon,
            ell=ell,
            ctx=ctx,
        )
        self._estimator = RRCollection(graph, ctx=ctx)
        self._estimator.extend_to(int(estimation_rr_sets))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def max_budget(self) -> int:
        """Largest budget the oracle serves."""
        return self._max_budget

    @property
    def seed_order(self) -> Tuple[int, ...]:
        """The full prefix-preserving ordering."""
        return self._prima.seeds

    @property
    def preprocessing_rr_sets(self) -> int:
        """RR sets the preprocessing (PRIMA) run generated."""
        return self._prima.num_rr_sets

    def seeds(self, budget: int) -> Tuple[int, ...]:
        """Seed set for any budget ``≤ max_budget`` — O(1) per query."""
        if not 0 <= budget <= self._max_budget:
            raise ValueError(
                f"budget {budget} outside the oracle's range "
                f"[0, {self._max_budget}]"
            )
        return self._prima.seeds[:budget]

    def estimate_spread(self, seeds: Sequence[int]) -> float:
        """Unbiased spread estimate ``σ(S) ≈ n · F_R(S)`` from retained
        RR sets (independent of the selection collection)."""
        fraction = self._estimator.coverage_fraction(list(seeds))
        return self._graph.num_nodes * fraction

    def spread_curve(self, budgets: Sequence[int]) -> List[Tuple[int, float]]:
        """(budget, estimated spread) along the prefix ordering."""
        return [(int(k), self.estimate_spread(self.seeds(int(k)))) for k in budgets]

    def allocate(self, budgets: Sequence[int]):
        """Run bundleGRD against the precomputed ordering — no new sampling.

        All budgets must be within the oracle's range.  Returns a
        :class:`repro.core.bundlegrd.BundleGRDResult` (imported lazily:
        ``core`` depends on ``rrset``, so the reverse import happens at call
        time to keep the package acyclic).
        """
        from repro.core.bundlegrd import bundle_grd

        budgets = [int(b) for b in budgets]
        if budgets and max(budgets) > self._max_budget:
            raise ValueError(
                f"budget {max(budgets)} exceeds the oracle's max "
                f"{self._max_budget}"
            )
        return bundle_grd(
            self._graph, budgets, seed_order=self._prima.seeds
        )

    # ------------------------------------------------------------------
    # Persistence (repro.store)
    # ------------------------------------------------------------------
    @property
    def graph(self) -> InfluenceGraph:
        """The social network the oracle was preprocessed on."""
        return self._graph

    @property
    def estimator(self) -> RRCollection:
        """The retained spread-estimation collection."""
        return self._estimator

    def verify_graph(self, graph: InfluenceGraph) -> None:
        """Check this oracle was preprocessed on ``graph`` (fingerprints).

        Same contract as :meth:`repro.store.SketchStore.verify_graph`, so
        an oracle can stand in wherever a store-backed ``seed_order`` is
        accepted (:func:`repro.core.bundlegrd.bundle_grd`).
        """
        from repro.graph.io import graph_fingerprint
        from repro.store.sketch_store import StaleStoreError

        if graph_fingerprint(graph) != graph_fingerprint(self._graph):
            raise StaleStoreError(
                "oracle was preprocessed on a different graph "
                f"(n={self._graph.num_nodes}) than the one supplied "
                f"(n={graph.num_nodes})"
            )

    def to_store(self):
        """Snapshot the oracle as a :class:`~repro.store.SketchStore`.

        Persists the prefix-preserving seed order, the estimation
        collection (flat CSR + inverted index + widths) and the sampling
        RNG state; a :class:`~repro.store.OracleService` over the result
        answers every query with this oracle's exact numbers.  Imported
        lazily — ``store`` depends on ``rrset``, so the reverse import
        happens at call time to keep the package acyclic.
        """
        from repro.store.builder import _triggering_name
        from repro.store.sketch_store import SketchStore

        return SketchStore.from_collection(
            self._graph,
            self._estimator,
            self._prima.seeds,
            max_budget=self._max_budget,
            epsilon=self._prima.epsilon,
            ell=self._prima.ell,
            triggering=_triggering_name(self._triggering),
        )

    def save(self, path) -> None:
        """Persist the oracle to ``path`` (see :mod:`repro.store`)."""
        self.to_store().save(path)

    def __repr__(self) -> str:
        return (
            f"InfluenceOracle(n={self._graph.num_nodes}, "
            f"max_budget={self._max_budget}, "
            f"preprocessing_rr_sets={self.preprocessing_rr_sets})"
        )
