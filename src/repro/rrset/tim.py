"""TIM⁺ — Two-phase Influence Maximization (Tang et al. 2014).

The predecessor of IMM: estimates a lower bound ``KPT`` on the optimal spread
by measuring RR-set widths, then generates ``θ = λ / KPT`` RR sets, where

    λ = (8 + 2ε) n (ℓ log n + log C(n,k) + log 2) ε⁻²

TIM generates substantially more RR sets than IMM at equal (ε, ℓ) — the
behaviour behind the paper's Fig. 6, where the TIM-based Com-IC baselines
RR-SIM+/RR-CIM use an order of magnitude more memory than the IMM-based
algorithms.  Implemented here because those baselines are built on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.engine import ensure_context, is_batched
from repro.graph.digraph import InfluenceGraph
from repro.rrset.batch import (
    batch_generate_rr_sets,
    build_trigger_csr,
    rr_set_widths,
    supports_batched,
)
from repro.diffusion.triggering import needs_trigger_csr
from repro.rrset.bounds import log_binomial
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection, generate_rr_set

_KPT_SECONDS = obs.histogram(
    "repro_engine_phase_seconds",
    "Wall-clock of engine phases (sampling, selection, kpt, forward)",
    labels=("phase",),
)


@dataclass(frozen=True)
class TIMResult:
    """Output of a TIM run: ordered seeds and sampling statistics."""

    seeds: Tuple[int, ...]
    num_rr_sets: int
    kpt: float
    coverage_fraction: float
    epsilon: float
    ell: float


def _kpt_estimation(
    graph: InfluenceGraph,
    k: int,
    ell: float,
    rng: np.random.Generator,
    backend: str = "sequential",
    triggering=None,
) -> Tuple[float, int]:
    """KptEstimation of TIM: lower-bounds ``OPT_k / n`` via RR-set widths.

    Returns ``(KPT, rr_sets_used)``.  ``w(R)`` is the number of edges pointing
    into the RR set; ``κ(R) = 1 − (1 − w(R)/m)^k`` estimates the probability a
    random size-k seed set covers ``R``.

    With ``backend="batched"`` each geometric round's ``c_i`` RR sets are one
    :func:`batch_generate_rr_sets` call and the widths one vectorized
    :func:`rr_set_widths` pass; the sequential branch keeps the historical
    per-set loop (and its RNG stream) untouched as the equivalence oracle.
    ``triggering`` samples the RR sets under that model on either branch
    (falling back to sequential when the model has no batched sampler), so
    KPT and the θ collection are calibrated against the same live-edge
    distribution.
    """
    n = graph.num_nodes
    m = max(graph.num_edges, 1)
    log2n = math.log2(n)
    used = 0
    if is_batched(backend) and not supports_batched(triggering):
        backend = "sequential"
    trigger_csr = (
        build_trigger_csr(graph, triggering)
        if is_batched(backend) and needs_trigger_csr(triggering)
        else None
    )
    for i in range(1, max(2, int(log2n))):
        # max() guards only the degenerate n == 1 case (log2n == 0, and the
        # whole round size collapses to 0): for n >= 2 the round schedule is
        # byte-identical to the historical sequential implementation.
        c_i = max(
            1,
            int(
                math.ceil(
                    (
                        6.0 * ell * math.log(n)
                        + 6.0 * math.log(max(log2n, 1.0))
                    )
                    * 2.0**i
                )
            ),
        )
        if is_batched(backend):
            members, lengths = batch_generate_rr_sets(
                graph, rng, c_i, triggering=triggering,
                trigger_csr=trigger_csr,
            )
            used += c_i
            widths = rr_set_widths(graph, members, lengths)
            total = float(np.sum(1.0 - (1.0 - widths / m) ** k))
        else:
            total = 0.0
            for _ in range(c_i):
                rr = generate_rr_set(graph, rng, triggering=triggering)
                used += 1
                width = sum(graph.in_degree(int(v)) for v in rr)
                kappa = 1.0 - (1.0 - width / m) ** k
                total += kappa
        if total / c_i > 1.0 / (2.0**i):
            return n * total / (2.0 * c_i), used
    return 1.0, used


def tim(
    graph: InfluenceGraph,
    k: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> TIMResult:
    """Select ``k`` seeds with TIM⁺ (without the IMM refinements).

    The context's backend picks the RR sampling path for *both* phases:
    the batched path generates each KPT geometric round ``c_i`` as one
    vectorized call (widths via :func:`repro.rrset.batch.rr_set_widths`)
    and the θ phase through the batched :class:`RRCollection`;
    ``sequential`` reproduces the historical per-set streams; see
    :func:`repro.rrset.prima.prima`.  The removed legacy ``backend=``
    keyword raises ``TypeError``; pass ``ctx=``.
    """
    ctx = ensure_context(ctx, backend=backend, rng=rng, caller="tim")
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = graph.num_nodes
    k = min(k, n)
    if k == 0:
        # Covers n == 0 too (k is clamped to n).  A 1-node graph is *not*
        # degenerate: k >= 1 must select node 0.
        return TIMResult(
            seeds=(),
            num_rr_sets=0,
            kpt=0.0,
            coverage_fraction=0.0,
            epsilon=epsilon,
            ell=ell,
        )
    if ctx.triggering is not None:
        ctx.triggering.validate(graph)
    with obs.span("rrset.tim", k=int(k), backend=ctx.backend):
        with obs.span("rrset.kpt"), _KPT_SECONDS.timer(phase="kpt"):
            kpt, kpt_sets = _kpt_estimation(
                graph, k, ell, ctx.rng, backend=ctx.backend,
                triggering=ctx.triggering,
            )
        lam = (
            (8.0 + 2.0 * epsilon)
            * n
            * (ell * math.log(n) + log_binomial(n, k) + math.log(2.0))
            / (epsilon * epsilon)
        )
        theta = int(math.ceil(lam / max(kpt, 1.0)))
        collection = RRCollection(graph, ctx=ctx)
        collection.extend_to(theta)
        seeds, frac = node_selection(collection, k)
    return TIMResult(
        seeds=tuple(seeds),
        num_rr_sets=collection.num_sets + kpt_sets,
        kpt=kpt,
        coverage_fraction=frac,
        epsilon=epsilon,
        ell=ell,
    )
