"""TIM⁺ — Two-phase Influence Maximization (Tang et al. 2014).

The predecessor of IMM: estimates a lower bound ``KPT`` on the optimal spread
by measuring RR-set widths, then generates ``θ = λ / KPT`` RR sets, where

    λ = (8 + 2ε) n (ℓ log n + log C(n,k) + log 2) ε⁻²

TIM generates substantially more RR sets than IMM at equal (ε, ℓ) — the
behaviour behind the paper's Fig. 6, where the TIM-based Com-IC baselines
RR-SIM+/RR-CIM use an order of magnitude more memory than the IMM-based
algorithms.  Implemented here because those baselines are built on it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.graph.digraph import InfluenceGraph
from repro.rrset.bounds import log_binomial
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection, generate_rr_set


@dataclass(frozen=True)
class TIMResult:
    """Output of a TIM run: ordered seeds and sampling statistics."""

    seeds: Tuple[int, ...]
    num_rr_sets: int
    kpt: float
    coverage_fraction: float
    epsilon: float
    ell: float


def _kpt_estimation(
    graph: InfluenceGraph,
    k: int,
    ell: float,
    rng: np.random.Generator,
) -> Tuple[float, int]:
    """KptEstimation of TIM: lower-bounds ``OPT_k / n`` via RR-set widths.

    Returns ``(KPT, rr_sets_used)``.  ``w(R)`` is the number of edges pointing
    into the RR set; ``κ(R) = 1 − (1 − w(R)/m)^k`` estimates the probability a
    random size-k seed set covers ``R``.
    """
    n = graph.num_nodes
    m = max(graph.num_edges, 1)
    log2n = math.log2(n)
    used = 0
    for i in range(1, max(2, int(log2n))):
        c_i = int(math.ceil((6.0 * ell * math.log(n) + 6.0 * math.log(log2n)) * 2.0**i))
        total = 0.0
        for _ in range(c_i):
            rr = generate_rr_set(graph, rng)
            used += 1
            width = sum(graph.in_degree(int(v)) for v in rr)
            kappa = 1.0 - (1.0 - width / m) ** k
            total += kappa
        if total / c_i > 1.0 / (2.0**i):
            return n * total / (2.0 * c_i), used
    return 1.0, used


def tim(
    graph: InfluenceGraph,
    k: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    backend: Optional[str] = None,
) -> TIMResult:
    """Select ``k`` seeds with TIM⁺ (without the IMM refinements).

    ``backend`` picks the RR sampling path for the θ-generation phase (the
    KPT estimation stays sequential: it inspects each set's width as it
    goes); see :func:`repro.rrset.prima.prima`.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = graph.num_nodes
    k = min(k, n)
    if k == 0 or n < 2:
        return TIMResult(
            seeds=(),
            num_rr_sets=0,
            kpt=0.0,
            coverage_fraction=0.0,
            epsilon=epsilon,
            ell=ell,
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    kpt, kpt_sets = _kpt_estimation(graph, k, ell, rng)
    lam = (
        (8.0 + 2.0 * epsilon)
        * n
        * (ell * math.log(n) + log_binomial(n, k) + math.log(2.0))
        / (epsilon * epsilon)
    )
    theta = int(math.ceil(lam / max(kpt, 1.0)))
    collection = RRCollection(graph, rng, backend=backend)
    collection.extend_to(theta)
    seeds, frac = node_selection(collection, k)
    return TIMResult(
        seeds=tuple(seeds),
        num_rr_sets=collection.num_sets + kpt_sets,
        kpt=kpt,
        coverage_fraction=frac,
        epsilon=epsilon,
        ell=ell,
    )
