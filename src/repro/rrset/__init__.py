"""Reverse-influence-sampling (RIS) substrate.

Random reverse-reachable (RR) sets (:mod:`repro.rrset.rrgen`; the vectorized
batched sampler lives in :mod:`repro.rrset.batch`), the greedy
max-coverage ``NodeSelection`` procedure (:mod:`repro.rrset.node_selection`),
the IMM algorithm of Tang et al. with the Chen-2018 regeneration fix
(:mod:`repro.rrset.imm`), its prefix-preserving multi-budget extension PRIMA —
Algorithm 2 of the paper (:mod:`repro.rrset.prima`) — and the wider
seed-selection landscape the paper discusses: TIM (used by the Com-IC
baselines, :mod:`repro.rrset.tim`), SSA (:mod:`repro.rrset.ssa`), SKIM's
bottom-k sketches (:mod:`repro.rrset.skim`), the classic CELF Monte-Carlo
greedy (:mod:`repro.rrset.greedy_mc`) and the prefix-preserving influence
oracle (:mod:`repro.rrset.oracle`).
"""

from repro.rrset.batch import (
    BACKEND_ENV,
    BACKENDS,
    TriggerCSR,
    batch_generate_rr_sets,
    build_trigger_csr,
    resolve_backend,
    sample_trigger_members,
    supports_batched,
)
from repro.rrset.greedy_mc import GreedyMCResult, greedy_mc
from repro.rrset.imm import IMMResult, imm
from repro.rrset.node_selection import (
    greedy_max_coverage,
    node_selection,
    node_selection_reference,
)
from repro.rrset.prima import PRIMAResult, prima
from repro.rrset.oracle import InfluenceOracle
from repro.rrset.rrgen import RRCollection, generate_rr_set
from repro.rrset.skim import SKIMResult, skim
from repro.rrset.ssa import SSAResult, ssa
from repro.rrset.tim import TIMResult, tim

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "GreedyMCResult",
    "IMMResult",
    "InfluenceOracle",
    "PRIMAResult",
    "RRCollection",
    "SKIMResult",
    "SSAResult",
    "TIMResult",
    "TriggerCSR",
    "batch_generate_rr_sets",
    "build_trigger_csr",
    "generate_rr_set",
    "sample_trigger_members",
    "greedy_max_coverage",
    "greedy_mc",
    "imm",
    "node_selection",
    "node_selection_reference",
    "prima",
    "resolve_backend",
    "skim",
    "ssa",
    "supports_batched",
    "tim",
]
