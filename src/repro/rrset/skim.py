"""SKIM — Sketch-based Influence Maximization (Cohen et al., CIKM 2014).

SKIM is the algorithm the paper's §2.1 singles out as already *prefix
preserving*: it emits an ordering of nodes such that every size-k prefix has
spread at least ``(1 − 1/e − ε)`` of the optimum for budget k — but "SKIM
does not dominate TIM in performance", which is why the paper builds PRIMA
on IMM instead.  Implementing SKIM completes the landscape and gives the
tests a second, independently-constructed prefix-preserving ordering to
compare PRIMA against.

This is a faithful-role implementation of the combined-reachability design
(DESIGN.md §11 conventions):

* sample ``ℓ`` live-edge instances; the universe is the pair set
  ``{(instance, node)}`` and a seed set's *coverage* is the number of pairs
  it reaches, an unbiased ``ℓ/n``-scaled spread estimator;
* build bottom-k *reachability sketches* by processing pairs in increasing
  rank order with reverse BFS, pruning at nodes whose sketch is full —
  exactly Cohen et al.'s construction; a node's influence estimate is the
  classic bottom-k cardinality estimator ``(k − 1)/τ_k``;
* greedy selection uses the sketch estimates as optimistic CELF bounds and
  validates candidates against *exact residual coverage* on the sampled
  instances (the original maintains residual sketches incrementally; exact
  residuals give the same ordering at our scales and keep the code honest).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.diffusion.worlds import LiveEdgeGraph, sample_live_edge_graph
from repro.graph.digraph import InfluenceGraph


@dataclass(frozen=True)
class SKIMResult:
    """Ordered seeds plus per-prefix coverage-based spread estimates."""

    seeds: Tuple[int, ...]
    prefix_spreads: Tuple[float, ...]
    num_instances: int
    sketch_size: int

    def seeds_for_budget(self, budget: int) -> Tuple[int, ...]:
        """The prefix serving a given budget (prefix-preserving order)."""
        if budget < 0 or budget > len(self.seeds):
            raise ValueError(
                f"budget {budget} outside [0, {len(self.seeds)}]"
            )
        return self.seeds[:budget]


def _build_sketches(
    instances: Sequence[LiveEdgeGraph],
    ranks: np.ndarray,
    sketch_size: int,
    num_nodes: int,
) -> List[List[float]]:
    """Bottom-k combined reachability sketches.

    Pairs ``(instance, node)`` are processed in increasing rank order; a
    reverse BFS inside the pair's instance appends the rank to the sketch of
    every node that reaches it, pruning at nodes whose sketch is already
    full (their bottom-k cannot change, and — ranks being ascending — their
    ancestors received those earlier ranks through the same paths).
    """
    in_adjacency = [world.in_adjacency() for world in instances]
    sketches: List[List[float]] = [[] for _ in range(num_nodes)]
    order = np.argsort(ranks, axis=None)
    for flat in order:
        instance_id, node = divmod(int(flat), num_nodes)
        rank = float(ranks[instance_id, node])
        incoming = in_adjacency[instance_id]
        visited = {node}
        queue: deque[int] = deque([node])
        while queue:
            v = queue.popleft()
            sketch = sketches[v]
            if len(sketch) >= sketch_size:
                continue  # full: prune
            sketch.append(rank)
            for u in incoming[v]:
                if u not in visited:
                    visited.add(u)
                    queue.append(u)
    return sketches


def _sketch_estimate(sketch: List[float], sketch_size: int) -> float:
    """Bottom-k cardinality estimate of a node's reachable pair count."""
    if len(sketch) < sketch_size:
        return float(len(sketch))  # exact: fewer reachable pairs than k
    tau = sketch[-1]
    if tau <= 0.0:
        return float(len(sketch))
    return (sketch_size - 1) / tau


def _forward_reach(world: LiveEdgeGraph, source: int) -> Set[int]:
    visited = {source}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for v in world.out_neighbors(u):
            v = int(v)
            if v not in visited:
                visited.add(v)
                queue.append(v)
    return visited


def skim(
    graph: InfluenceGraph,
    budget: int,
    num_instances: int = 48,
    sketch_size: int = 32,
    rng: Optional[np.random.Generator] = None,
    *,
    ctx=None,
) -> SKIMResult:
    """Select an ordered, prefix-preserving seed set of size ``budget``.

    Parameters
    ----------
    graph:
        The social network.
    budget:
        Number of seeds (the ordering serves every smaller budget too).
    num_instances:
        Live-edge instances ``ℓ`` (more instances, tighter estimates).
    sketch_size:
        Bottom-k sketch size ``k`` (the paper's SKIM uses k to trade accuracy
        for speed; estimates are exact below k reachable pairs).
    ctx:
        :class:`repro.engine.EngineContext` supplying the randomness
        (SKIM is sketch-based, not RR-based, so only the context's RNG is
        consumed — the backend knob does not apply).
    """
    from repro.engine import ensure_context

    ctx = ensure_context(ctx, rng=rng, caller="skim")
    rng = ctx.rng
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    if num_instances <= 0 or sketch_size <= 1:
        raise ValueError("need at least 1 instance and sketch size >= 2")
    n = graph.num_nodes
    budget = min(budget, n)
    if budget == 0 or n == 0:
        return SKIMResult(
            seeds=(),
            prefix_spreads=(),
            num_instances=num_instances,
            sketch_size=sketch_size,
        )
    instances = [
        sample_live_edge_graph(graph, rng) for _ in range(num_instances)
    ]
    ranks = rng.random((num_instances, n))
    sketches = _build_sketches(instances, ranks, sketch_size, n)

    # CELF over exact residual coverage, seeded with sketch estimates as the
    # (optimistic) initial bounds.
    covered: List[Set[int]] = [set() for _ in range(num_instances)]
    heap: List[Tuple[float, int, int]] = []  # (-bound, node, round)
    for v in range(n):
        estimate = _sketch_estimate(sketches[v], sketch_size)
        heapq.heappush(heap, (-estimate, v, -1))

    def residual_coverage(v: int) -> int:
        total = 0
        for instance_id, world in enumerate(instances):
            reach = _forward_reach(world, v)
            total += len(reach - covered[instance_id])
        return total

    seeds: List[int] = []
    prefix_spreads: List[float] = []
    covered_total = 0
    round_id = 0
    while heap and len(seeds) < budget:
        neg_bound, v, evaluated_round = heapq.heappop(heap)
        if v in seeds:
            continue
        if evaluated_round != round_id:
            exact = residual_coverage(v)
            heapq.heappush(heap, (-float(exact), v, round_id))
            continue
        seeds.append(v)
        for instance_id, world in enumerate(instances):
            covered[instance_id] |= _forward_reach(world, v)
        covered_total = sum(len(c) for c in covered)
        prefix_spreads.append(covered_total / num_instances)
        round_id += 1

    return SKIMResult(
        seeds=tuple(seeds),
        prefix_spreads=tuple(prefix_spreads),
        num_instances=num_instances,
        sketch_size=sketch_size,
    )
