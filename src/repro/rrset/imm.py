"""IMM — Influence Maximization via Martingales (Tang et al. 2015).

Single-budget influence maximization with the ``(1 − 1/e − ε)`` guarantee,
implemented as the single-budget specialization of the shared PRIMA machinery
(Algorithm 2 with ``|b| = 1`` reduces exactly to IMM plus the Chen-2018
regeneration fix).  IMM is what the item-disj and bundle-disj baselines call,
and the unit the Table 6 memory comparison is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.engine import ensure_context
from repro.graph.digraph import InfluenceGraph
from repro.rrset.prima import PRIMAResult, prima


@dataclass(frozen=True)
class IMMResult:
    """Output of an IMM run: ordered seeds and sampling statistics."""

    seeds: Tuple[int, ...]
    num_rr_sets: int
    num_rr_sets_search: int
    coverage_fraction: float
    epsilon: float
    ell: float


def imm(
    graph: InfluenceGraph,
    k: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    ell_prime: Optional[float] = None,
    triggering=None,
    backend: Optional[str] = None,
    *,
    ctx=None,
) -> IMMResult:
    """Select ``k`` seeds with IMM.

    Parameters mirror :func:`repro.rrset.prima.prima` (including the
    ``ctx`` spelling of the engine context); ``ell_prime`` lets the
    Table 6 experiment align IMM's failure-probability bookkeeping with
    PRIMA's so the RR-set counts are directly comparable.
    """
    ctx = ensure_context(
        ctx, backend=backend, rng=rng, triggering=triggering, caller="imm"
    )
    result: PRIMAResult = prima(
        graph,
        [k],
        epsilon=epsilon,
        ell=ell,
        ell_prime=ell_prime,
        ctx=ctx,
    )
    return IMMResult(
        seeds=result.seeds,
        num_rr_sets=result.num_rr_sets,
        num_rr_sets_search=result.num_rr_sets_search,
        coverage_fraction=result.coverage_fraction,
        epsilon=epsilon,
        ell=ell,
    )


def imm_seed_pool(
    graph: InfluenceGraph,
    total_seeds: int,
    epsilon: float = 0.5,
    ell: float = 1.0,
    rng: Optional[np.random.Generator] = None,
    *,
    ctx=None,
) -> Tuple[int, ...]:
    """Ordered pool of ``total_seeds`` nodes from a single IMM invocation.

    The item-disj baseline asks IMM for ``Σ_i b_i`` nodes at once and then
    carves the pool up across items; this helper is that call.
    """
    ctx = ensure_context(ctx, rng=rng, caller="imm_seed_pool")
    return imm(graph, total_seeds, epsilon=epsilon, ell=ell, ctx=ctx).seeds
