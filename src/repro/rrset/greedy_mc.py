"""Classic Monte-Carlo greedy influence maximization (Kempe et al. [30]).

The original ``(1 − 1/e − ε)`` algorithm for IM: greedily add the node with
the largest marginal Monte-Carlo spread estimate, with CELF lazy evaluation
(Leskovec et al.) to skip re-estimations that cannot win.  IMM is "orders of
magnitude faster" than this (§2.1); we implement it both as the historical
baseline the RIS algorithms are measured against and as an independent
cross-check of IMM/PRIMA seed quality in the tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.diffusion.ic import estimate_spread
from repro.graph.digraph import InfluenceGraph


@dataclass(frozen=True)
class GreedyMCResult:
    """Ordered seeds, their estimated spread, and evaluation counts."""

    seeds: Tuple[int, ...]
    spread: float
    num_evaluations: int


def greedy_mc(
    graph: InfluenceGraph,
    k: int,
    num_samples: int = 100,
    candidate_nodes: Optional[Sequence[int]] = None,
    rng_seed: int = 0,
) -> GreedyMCResult:
    """Select ``k`` seeds by CELF-accelerated MC greedy.

    Common random numbers (a fixed seed per evaluation) keep marginal
    comparisons stable at moderate sample counts.  Cost is
    ``O(evaluations × num_samples × cascade)`` — use candidate shortlists
    beyond toy graphs.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    nodes = (
        list(range(graph.num_nodes))
        if candidate_nodes is None
        else [int(v) for v in candidate_nodes]
    )
    k = min(k, len(nodes))
    if k == 0:
        return GreedyMCResult(seeds=(), spread=0.0, num_evaluations=0)

    def spread_of(seeds: List[int]) -> float:
        return estimate_spread(
            graph, seeds, num_samples, np.random.default_rng(rng_seed)
        )

    seeds: List[int] = []
    current_spread = 0.0
    evaluations = 0
    heap: List[Tuple[float, int, int]] = []  # (-gain, node, round)
    for node in nodes:
        gain = spread_of([node])
        evaluations += 1
        heapq.heappush(heap, (-gain, node, 0))

    round_id = 0
    while heap and len(seeds) < k:
        neg_gain, node, evaluated_round = heapq.heappop(heap)
        if node in seeds:
            continue
        if evaluated_round != round_id:
            gain = spread_of(seeds + [node]) - current_spread
            evaluations += 1
            heapq.heappush(heap, (-gain, node, round_id))
            continue
        seeds.append(node)
        current_spread += -neg_gain
        round_id += 1

    return GreedyMCResult(
        seeds=tuple(seeds),
        spread=spread_of(seeds),
        num_evaluations=evaluations + 1,
    )
