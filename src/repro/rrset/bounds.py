"""Sample-size bounds shared by IMM and PRIMA.

Implements Eq. (7) and Eq. (8) of the paper (which extend the bounding of
IMM [51] with the union-bound factor ``ℓ′`` over the budget vector):

    λ′_k = (2 + 2/3 ε′) (log C(n,k) + ℓ′ log n + log log₂ n) n / ε′²
    λ*_k = 2n ((1 − 1/e) α + β_k)² ε⁻²
    α    = sqrt(ℓ′ log n + log 2)
    β_k  = sqrt((1 − 1/e)(log C(n,k) + ℓ′ log n + log 2))

with ``ε′ = √2 · ε`` and ``log`` the natural logarithm.  PRIMA raises the
failure probability bookkeeping by setting ``ℓ ← ℓ + log 2 / log n`` and then
``ℓ′ = log_n(n^ℓ · |b|) = ℓ + log|b| / log n`` (Algorithm 2, line 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma; 0 for degenerate arguments."""
    if k < 0 or k > n or n <= 0:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


@dataclass(frozen=True)
class SampleBounds:
    """Precomputed quantities for one (graph size, ε, ℓ′) setting."""

    n: int
    epsilon: float
    ell_prime: float

    def __post_init__(self) -> None:
        # n == 1 is allowed: every log n term degrades to 0 gracefully, so
        # IMM/PRIMA can serve singleton graphs (seeds = (0,)) instead of
        # silently returning nothing.
        if self.n < 1:
            raise ValueError(f"need at least 1 node, got {self.n}")
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")

    @property
    def epsilon_prime(self) -> float:
        """``ε′ = √2 · ε``."""
        return math.sqrt(2.0) * self.epsilon

    @property
    def alpha(self) -> float:
        """``α = sqrt(ℓ′ log n + log 2)`` — budget independent."""
        return math.sqrt(self.ell_prime * math.log(self.n) + math.log(2.0))

    def beta(self, k: int) -> float:
        """``β_k`` of Eq. (8)."""
        gamma = 1.0 - 1.0 / math.e
        return math.sqrt(
            gamma
            * (
                log_binomial(self.n, k)
                + self.ell_prime * math.log(self.n)
                + math.log(2.0)
            )
        )

    def lambda_prime(self, k: int) -> float:
        """``λ′_k`` of Eq. (7) — drives the geometric search phase."""
        eps_p = self.epsilon_prime
        return (
            (2.0 + 2.0 / 3.0 * eps_p)
            * (
                log_binomial(self.n, k)
                + self.ell_prime * math.log(self.n)
                + math.log(max(math.log2(self.n), 1.0))
            )
            * self.n
            / (eps_p * eps_p)
        )

    def lambda_star(self, k: int) -> float:
        """``λ*_k`` of Eq. (8) — drives the final sample size."""
        gamma = 1.0 - 1.0 / math.e
        term = gamma * self.alpha + self.beta(k)
        return 2.0 * self.n * term * term / (self.epsilon * self.epsilon)

    @property
    def max_search_level(self) -> int:
        """Largest ``i`` of the geometric search: ``log₂(n) − 1``."""
        return max(1, int(math.floor(math.log2(self.n))) - 1)


def adjusted_ell(ell: float, n: int) -> float:
    """``ℓ + log 2 / log n`` — PRIMA's success-probability lift (line 2).

    ``n`` is clamped to 2 so the lift stays finite on a singleton graph
    (where the failure probability ``1/n^ℓ`` is vacuous anyway).
    """
    return ell + math.log(2.0) / math.log(max(n, 2))


def ell_prime_for(ell: float, n: int, num_budgets: int) -> float:
    """``ℓ′ = log_n(n^ℓ · |b|)`` — the union bound over the budget vector.

    Same ``n >= 2`` clamp as :func:`adjusted_ell` for singleton graphs.
    """
    if num_budgets < 1:
        raise ValueError(f"need at least one budget, got {num_budgets}")
    return ell + math.log(num_budgets) / math.log(max(n, 2))
