"""Greedy max-k-coverage over RR sets (``NodeSelection`` of IMM).

Given a collection ``R`` of RR sets and a budget ``k``, repeatedly pick the
node covering the most not-yet-covered RR sets.  Returns the *ordered* seed
list — the order matters for the prefix-preserving property PRIMA provides —
and the covered fraction ``F_R(S)``.

The procedure is deterministic given the collection (ties broken by smallest
node id), which is what lets PRIMA reuse seed prefixes across budgets.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.rrset.rrgen import RRCollection


def node_selection(
    collection: RRCollection, k: int
) -> Tuple[List[int], float]:
    """Greedy max-coverage seed selection.

    Parameters
    ----------
    collection:
        RR sets with their inverted index.
    k:
        Number of seeds to select (capped at the number of nodes).

    Returns
    -------
    (seeds, fraction):
        Ordered seed list and the fraction ``F_R(seeds)`` of covered RR sets.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = collection.graph.num_nodes
    k = min(k, n)
    num_sets = collection.num_sets
    if num_sets == 0:
        # Degenerate but well-defined: arbitrary (lowest-id) seeds, coverage 0.
        return list(range(k)), 0.0

    gains = collection.cover_counts.astype(np.int64).copy()
    covered = np.zeros(num_sets, dtype=bool)
    seeds: List[int] = []
    covered_total = 0
    for _ in range(k):
        u = int(np.argmax(gains))  # argmax breaks ties at the lowest id
        seeds.append(u)
        gain_u = int(gains[u])
        if gain_u > 0:
            for rr_id in collection.containing(u):
                if covered[rr_id]:
                    continue
                covered[rr_id] = True
                covered_total += 1
                for w in collection.sets()[rr_id]:
                    gains[int(w)] -= 1
        # a selected node must never be picked again
        gains[u] = -1
    return seeds, covered_total / num_sets
