"""Greedy max-k-coverage over RR sets (``NodeSelection`` of IMM).

Given a collection ``R`` of RR sets and a budget ``k``, repeatedly pick the
node covering the most not-yet-covered RR sets.  Returns the *ordered* seed
list — the order matters for the prefix-preserving property PRIMA provides —
and the covered fraction ``F_R(S)``.

Tie-break contract
------------------
The procedure is deterministic given the collection: at every round the
winner is the node with the **largest residual gain**, ties broken by the
**smallest node id** (``np.argmax`` returns the first maximum).  This exact
contract is what lets PRIMA reuse seed prefixes across budgets, and both
implementations below honour it:

* :func:`node_selection` — vectorized: the per-round gain update gathers the
  member slices of all newly covered RR sets in one segmented ``np.repeat``
  gather and applies them with a single ``bincount`` subtraction.  Because
  gain updates are exact integer arithmetic, its output is bit-for-bit
  identical to the reference loop on the same collection.
* :func:`node_selection_reference` — the historical per-element Python loop,
  kept as the equivalence oracle for tests and benchmarks.

:func:`greedy_max_coverage` exposes the same vectorized greedy over raw flat
arrays for callers that build ad-hoc collections (the Com-IC baselines).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro import obs
from repro.rrset.rrgen import RRCollection, build_inverted_index

_SELECTION_SECONDS = obs.histogram(
    "repro_engine_phase_seconds",
    "Wall-clock of engine phases (sampling, selection, kpt, forward)",
    labels=("phase",),
)


def _greedy_rounds(
    num_nodes: int,
    members: np.ndarray,
    offsets: np.ndarray,
    idx_sets: np.ndarray,
    idx_indptr: np.ndarray,
    gains: np.ndarray,
    k: int,
) -> Tuple[List[int], int]:
    """Shared vectorized greedy loop; mutates ``gains`` in place."""
    num_sets = offsets.shape[0] - 1
    covered = np.zeros(num_sets, dtype=bool)
    seeds: List[int] = []
    covered_total = 0
    for _ in range(k):
        u = int(np.argmax(gains))  # argmax breaks ties at the lowest id
        seeds.append(u)
        if gains[u] > 0:
            ids = idx_sets[idx_indptr[u] : idx_indptr[u + 1]]
            new = ids[~covered[ids]]
            if new.shape[0]:
                covered[new] = True
                covered_total += int(new.shape[0])
                starts = offsets[new]
                lengths = offsets[new + 1] - starts
                total = int(lengths.sum())
                flat = np.repeat(
                    starts - (np.cumsum(lengths) - lengths), lengths
                ) + np.arange(total)
                gains -= np.bincount(members[flat], minlength=num_nodes)
        # a selected node must never be picked again
        gains[u] = -1
    return seeds, covered_total


def greedy_max_coverage(
    num_nodes: int, members: np.ndarray, offsets: np.ndarray, k: int
) -> Tuple[List[int], int]:
    """Vectorized greedy max-coverage over raw flat CSR arrays.

    ``members[offsets[i] : offsets[i+1]]`` are the nodes of set ``i``.
    Duplicate nodes within a set are tolerated (de-duplicated up front, so
    gains and coverage count each (set, node) pair once).  Builds the
    inverted index in bulk (``argsort`` + ``bincount``) and runs the same
    greedy rounds as :func:`node_selection`.  Returns the ordered seed list
    and the number of covered sets.
    """
    members = np.asarray(members, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    num_sets = offsets.shape[0] - 1
    # Normalize: drop duplicate (set, node) pairs so occurrence counts equal
    # set counts everywhere downstream.
    if members.shape[0]:
        set_ids = np.repeat(
            np.arange(num_sets, dtype=np.int64), np.diff(offsets)
        )
        unique_keys = np.unique(set_ids * np.int64(num_nodes) + members)
        members = unique_keys % num_nodes
        lengths = np.bincount(unique_keys // num_nodes, minlength=num_sets)
        offsets = np.zeros(num_sets + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
    k = min(k, num_nodes)  # same clamp as node_selection: no duplicate seeds
    idx_sets, idx_indptr = build_inverted_index(members, offsets, num_nodes)
    gains = np.diff(idx_indptr).astype(np.int64)
    return _greedy_rounds(
        num_nodes, members, offsets, idx_sets, idx_indptr, gains, k
    )


def node_selection(
    collection: RRCollection, k: int
) -> Tuple[List[int], float]:
    """Greedy max-coverage seed selection (vectorized).

    Parameters
    ----------
    collection:
        RR sets with their inverted index.
    k:
        Number of seeds to select (capped at the number of nodes).

    Returns
    -------
    (seeds, fraction):
        Ordered seed list and the fraction ``F_R(seeds)`` of covered RR sets.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = collection.graph.num_nodes
    k = min(k, n)
    num_sets = collection.num_sets
    if num_sets == 0:
        # Degenerate but well-defined: arbitrary (lowest-id) seeds, coverage 0.
        return list(range(k)), 0.0

    with obs.span(
        "rrset.node_selection", k=int(k), num_sets=int(num_sets)
    ), _SELECTION_SECONDS.timer(phase="selection"):
        members, offsets, idx_sets, idx_indptr = collection.selection_arrays()
        gains = collection.cover_counts.astype(np.int64).copy()
        seeds, covered_total = _greedy_rounds(
            n, members, offsets, idx_sets, idx_indptr, gains, k
        )
    return seeds, covered_total / num_sets


def node_selection_reference(
    collection: RRCollection, k: int
) -> Tuple[List[int], float]:
    """The historical per-element greedy loop (equivalence oracle).

    Same tie-break contract as :func:`node_selection`; kept for the
    exact-equivalence tests and the engine benchmark.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    n = collection.graph.num_nodes
    k = min(k, n)
    num_sets = collection.num_sets
    if num_sets == 0:
        return list(range(k)), 0.0

    gains = collection.cover_counts.astype(np.int64).copy()
    covered = np.zeros(num_sets, dtype=bool)
    sets = collection.sets()
    seeds: List[int] = []
    covered_total = 0
    for _ in range(k):
        u = int(np.argmax(gains))
        seeds.append(u)
        gain_u = int(gains[u])
        if gain_u > 0:
            for rr_id in collection.containing(u):
                if covered[rr_id]:
                    continue
                covered[rr_id] = True
                covered_total += 1
                for w in sets[rr_id]:
                    gains[int(w)] -= 1
        gains[u] = -1
    return seeds, covered_total / num_sets
