"""Legacy entry point: the offline environment's setuptools predates PEP 517
wheel builds, so editable installs go through setup.py."""
from setuptools import setup

setup()
