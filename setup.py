"""Legacy entry point for environments whose setuptools predates PEP 660
editable installs; all metadata lives in pyproject.toml (`pip install -e .`
is what CI uses across the Python 3.10-3.13 matrix)."""
from setuptools import setup

setup()
