#!/usr/bin/env python3
"""End-to-end smoke test for ``repro serve`` (the blocking CI job).

Everything here crosses a process boundary on purpose: the serving
stack's failure modes — leaked mmaps, sockets that outlive the server,
signal handlers that never fire — are invisible to in-process tests.
The script:

1. builds two small sketch stores into a scratch fleet directory;
2. starts ``repro serve`` in a **fresh subprocess** (the production
   entry point, not an in-process ServingApp);
3. replays golden queries through :class:`ServingClient` and checks
   byte-for-byte agreement with a local :class:`OracleService` over the
   same artifacts;
4. extends one store on disk (atomic replace) and hot-swaps it live via
   ``POST /v1/stores/{key}/reload``, checking the served snapshot grew;
5. sends SIGINT and asserts a clean exit: returncode 0, the
   ``clean shutdown`` summary line with ``leaked=0``, and
6. proves nothing survived the process: the port refuses connections
   and the server reported every mmap released.

Exit status 0 on success; any failed check prints a ``SMOKE FAIL`` line
and exits 1.  Run from the repository root::

    python tools/serving_smoke.py
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import EngineContext  # noqa: E402
from repro.graph.generators import random_wc_graph  # noqa: E402
from repro.serving import ServingClient  # noqa: E402
from repro.store import (  # noqa: E402
    OracleService,
    SketchStore,
    build_store,
    extend_store,
)

FLEET = {
    # key -> (nodes, avg_degree, graph seed)
    "smoke_alpha": (300, 5, 17),
    "smoke_beta": (200, 4, 23),
}
MAX_BUDGET = 5
RR_SETS = 800
EXTEND_BY = 400
QUERY_SEEDS = [0, 3, 7, 19, 42]

_failures: list[str] = []


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "SMOKE FAIL"
    print(f"{status}: {what}")
    if not ok:
        _failures.append(what)


def build_fleet(root: Path) -> dict[str, object]:
    graphs = {}
    for index, (key, (nodes, degree, seed)) in enumerate(FLEET.items()):
        graph = random_wc_graph(nodes, avg_degree=degree, seed=seed)
        store = build_store(
            graph,
            MAX_BUDGET,
            estimation_rr_sets=RR_SETS,
            ctx=EngineContext.create(seed=100 + index),
        )
        store.save(root / f"{key}.sketch")
        graphs[key] = graph
    return graphs


def start_server(root: Path) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store-root",
            str(root),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = proc.stdout.readline().strip()
    print(f"server: {banner}")
    if not banner.startswith("serving "):
        proc.kill()
        out, err = proc.communicate(timeout=30)
        raise SystemExit(f"SMOKE FAIL: bad banner {banner!r}\n{out}\n{err}")
    host, port = banner.rsplit(" ", 1)[-1].split(":")
    proc.stdout.readline()  # "keys: ..." line
    return proc, host, int(port)


def port_refuses(host: str, port: int, deadline_s: float = 10.0) -> bool:
    """True once nothing is listening on (host, port)."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                pass
        except OSError:
            return True
        time.sleep(0.1)
    return False


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="repro_smoke_") as tmp:
        root = Path(tmp)
        graphs = build_fleet(root)
        golden = {
            key: OracleService.open(root / f"{key}.sketch", mmap=False)
            for key in FLEET
        }
        proc, host, port = start_server(root)
        try:
            with ServingClient(host, port) as client:
                check(client.health()["status"] == "ok", "healthz answers")
                listed = {row["key"] for row in client.stores()}
                check(listed == set(FLEET), f"lists the fleet: {sorted(listed)}")

                for key, service in golden.items():
                    check(
                        client.seeds(key, MAX_BUDGET)
                        == list(service.seeds(MAX_BUDGET)),
                        f"{key}: served seeds == local oracle",
                    )
                    check(
                        client.spread(key, QUERY_SEEDS)
                        == service.estimate_spread(QUERY_SEEDS),
                        f"{key}: served spread == local oracle (exact)",
                    )

                # Hot-swap: extend one store on disk (atomic replace via
                # save), reload it live, and confirm the served snapshot
                # grew without a restart.
                key = "smoke_alpha"
                path = root / f"{key}.sketch"
                old_sets = client.store(key)["num_sets"]
                extend_store(
                    SketchStore.load(path, mmap=False),
                    graphs[key],
                    EXTEND_BY,
                ).save(path)
                reloaded = client.reload(key)
                check(
                    reloaded["num_sets"] == old_sets + EXTEND_BY,
                    f"{key}: reload serves the extended store "
                    f"({old_sets} -> {reloaded['num_sets']} sets)",
                )
                swapped = OracleService.open(path, mmap=False)
                check(
                    client.spread(key, QUERY_SEEDS)
                    == swapped.estimate_spread(QUERY_SEEDS),
                    f"{key}: post-swap spread == extended oracle (exact)",
                )
                stats = client.stats()
                check(
                    stats["router"]["swaps"] == 1, "router counted the swap"
                )
                check(
                    "pool" in stats and "metrics" in stats,
                    "/v1/stats folds in pool + metrics snapshot",
                )

                # Observability: /v1/metrics must serve *valid* Prometheus
                # text with non-zero request counters for the traffic we
                # just generated (DESIGN.md §9).
                from repro import obs

                text = client.metrics_text()
                try:
                    parsed = obs.parse_prometheus(text)
                    check(True, "/v1/metrics parses as Prometheus text")
                except ValueError as exc:
                    parsed = {}
                    check(False, f"/v1/metrics parse error: {exc}")
                responses = parsed.get("repro_serving_responses_total", {})
                served = sum(
                    value for key, value in responses.items() if "2xx" in key
                )
                check(
                    served >= len(QUERY_SEEDS),
                    f"response counters saw the traffic ({served:.0f} 2xx)",
                )
                latency = parsed.get("repro_serving_request_seconds_count", {})
                check(
                    latency.get('{"endpoint": "spread"}', 0) > 0,
                    "request-latency histogram has spread samples",
                )
                batches = parsed.get("repro_serving_batch_size_count", {})
                check(
                    batches.get("", 0) > 0,
                    "coalescing batch-size histogram has samples",
                )
                swaps = parsed.get("repro_serving_hot_swaps_total", {})
                check(swaps.get("", 0) == 1, "hot-swap counter saw the reload")
        finally:
            proc.send_signal(signal.SIGINT)
            out, err = proc.communicate(timeout=60)

        print(out.rstrip())
        if err.strip():
            print(f"server stderr:\n{err.rstrip()}")
        check(proc.returncode == 0, f"exit code 0 (got {proc.returncode})")
        check("clean shutdown:" in out, "prints the shutdown summary")
        check("leaked=0" in out, "no mmaps leaked past shutdown")
        check(not err.strip(), "no stderr noise from the server")
        check(port_refuses(host, port), f"port {port} refuses after exit")

    if _failures:
        print(f"\nserving-smoke: {len(_failures)} FAILED check(s)")
        return 1
    print("\nserving-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
