#!/usr/bin/env python3
"""Ratcheted mypy gate over the typed core (engine, store, parallel, serving).

Full ``--strict`` on a numpy-heavy research codebase is noise; no gate
at all lets annotations rot.  The middle path is a *ratchet*: a
checked-in per-package ceiling on mypy error counts
(``tools/mypy_baseline.json``).  CI fails when a package exceeds its
ceiling — new code cannot add type errors — and prints a nudge when a
package comes in under it, so the ceiling only ever moves down:

    python tools/mypy_ratchet.py            # gate (CI mode)
    python tools/mypy_ratchet.py --update   # rewrite baseline to current

The baseline was seeded loose; tighten it with ``--update`` whenever a
cleanup lands.  When mypy is not installed (the dev container bakes the
runtime toolchain only), the gate SKIPs loudly and exits 0 — CI installs
it from requirements-dev.txt, so the skip can never mask a regression
there.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "tools" / "mypy_baseline.json"

#: The packages under the ratchet, in baseline-file order.  The serving
#: ceiling was seeded by hand (mypy is absent from the dev container);
#: the first CI run under budget prints the ratchet-down nudge, and
#: ``--update`` in an env with mypy tightens it to the measured count.
PACKAGES = (
    "src/repro/engine",
    "src/repro/store",
    "src/repro/parallel",
    "src/repro/serving",
    "src/repro/obs",
    "src/repro/graph",
)


def mypy_available() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run_mypy() -> list[str]:
    """Error lines (``path:line: error: ...``) from one mypy run."""
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "pyproject.toml"),
            *PACKAGES,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    if proc.returncode not in (0, 1):  # 2 is a usage/crash error
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"mypy crashed with exit code {proc.returncode}")
    return [line for line in proc.stdout.splitlines() if ": error:" in line]


def count_by_package(errors: list[str]) -> dict[str, int]:
    counts = {pkg: 0 for pkg in PACKAGES}
    for line in errors:
        path = line.split(":", 1)[0].replace("\\", "/")
        for pkg in PACKAGES:
            if path.startswith(pkg):
                counts[pkg] += 1
                break
    return counts


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline to the current error counts",
    )
    args = parser.parse_args(argv)

    if not mypy_available():
        print(
            "mypy-ratchet: SKIP — mypy is not installed in this "
            "environment (CI installs it from requirements-dev.txt; "
            "locally: run inside an env that has it)"
        )
        return 0

    baseline = json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    errors = run_mypy()
    counts = count_by_package(errors)

    if args.update:
        BASELINE_PATH.write_text(json.dumps(counts, indent=2) + "\n", encoding="utf-8")
        print(f"mypy-ratchet: baseline rewritten: {counts}")
        return 0

    failed = False
    for pkg in PACKAGES:
        allowed = baseline.get(pkg, 0)
        actual = counts[pkg]
        if actual > allowed:
            failed = True
            print(
                f"mypy-ratchet: FAIL {pkg}: {actual} errors > "
                f"baseline {allowed}"
            )
            for line in errors:
                if line.replace("\\", "/").startswith(pkg):
                    print(f"  {line}")
        elif actual < allowed:
            print(
                f"mypy-ratchet: {pkg}: {actual} errors (baseline "
                f"{allowed}) — ratchet down with --update"
            )
        else:
            print(f"mypy-ratchet: OK {pkg}: {actual} errors (at baseline)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
