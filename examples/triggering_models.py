"""Running the whole pipeline under the linear-threshold model.

The paper's §5 notes the results "carry over unchanged to any triggering
propagation model".  This example swaps the diffusion substrate from IC to
LT — in both the seed-selection phase (PRIMA's RR sets are sampled from LT
trigger sets) and the welfare evaluation (edge worlds drawn from LT trigger
sets) — and shows the bundling advantage is model-agnostic.

Run with::

    python examples/triggering_models.py
"""

import numpy as np

from repro import bundle_grd, estimate_welfare
from repro.baselines import item_disjoint
from repro.experiments.configs import two_item_config
from repro.graph.generators import random_wc_graph


def main() -> None:
    # Weighted-cascade probabilities double as LT weights: each node's
    # incoming weights sum to exactly 1, which LT requires.
    graph = random_wc_graph(3000, avg_degree=8, seed=17)
    model = two_item_config(1).model
    budgets = [25, 25]
    print(f"network: {graph}")
    print(f"budgets: {budgets}\n")

    print(f"{'diffusion':>10}  {'bundleGRD':>12}  {'item-disj':>12}  {'advantage':>10}")
    for triggering in ("ic", "lt"):
        greedy = bundle_grd(
            graph, budgets, rng=np.random.default_rng(0), triggering=triggering
        )
        baseline = item_disjoint(graph, budgets, rng=np.random.default_rng(0))
        w_greedy = estimate_welfare(
            graph, model, greedy.allocation, num_samples=200,
            rng=np.random.default_rng(1), triggering=triggering,
        ).mean
        w_baseline = estimate_welfare(
            graph, model, baseline.allocation, num_samples=200,
            rng=np.random.default_rng(1), triggering=triggering,
        ).mean
        print(f"{triggering.upper():>10}  {w_greedy:>12.1f}  {w_baseline:>12.1f}"
              f"  {w_greedy / max(w_baseline, 1e-9):>9.2f}x")

    print("\nThe bundling advantage holds under both triggering models —")
    print("bundleGRD itself is unchanged; only the trigger-set sampler and")
    print("the welfare evaluator's edge worlds are swapped.")


if __name__ == "__main__":
    main()
