"""Competing (substitute) items via submodular valuations — the §5 setting.

The paper's framework "can support any mix of competing and complementary
items"; its theory covers the complementary (supermodular) case, and §5
points to competition via *submodular* value functions as the natural next
study.  This example runs that setting:

* three substitutable products (think: three video-streaming subscriptions)
  with a concave-over-additive valuation — owning a second service adds much
  less value than the first;
* the UIC adoption rule then makes every user stop at the profitable prefix,
  so items compete for adoption;
* we compare how seeding strategies fare: bundling everything on few seeds
  (bundleGRD's allocation) vs spreading items across disjoint seeds
  (item-disj's) — under competition, spreading wins, the mirror image of
  the complementary setting.

Run with::

    python examples/competing_items.py
"""

import numpy as np

from repro import bundle_grd, estimate_welfare
from repro.baselines import item_disjoint
from repro.graph.generators import random_wc_graph
from repro.utility import (
    AdditivePrice,
    ConcaveOverAdditiveValuation,
    GaussianNoise,
    UtilityModel,
)


def main() -> None:
    graph = random_wc_graph(3000, avg_degree=8, seed=23)
    # Each service alone: V = sqrt(36) = 6 against price 4 (utility +2).
    # Two services: V = sqrt(72) ≈ 8.49 — the second adds only ~2.49 value
    # for 4 more price. Classic substitutes.
    model = UtilityModel(
        ConcaveOverAdditiveValuation([36.0, 36.0, 36.0], exponent=0.5),
        AdditivePrice([4.0, 4.0, 4.0]),
        GaussianNoise.uniform(3, 0.5),
        item_names=("streamA", "streamB", "streamC"),
    )
    for mask, label in ((0b001, "one service"), (0b011, "two"), (0b111, "all three")):
        print(f"E[U({label:12s})] = {model.expected_utility(mask):+6.2f}")

    budgets = [20, 20, 20]
    bundled = bundle_grd(graph, budgets, rng=np.random.default_rng(0))
    spread = item_disjoint(graph, budgets, rng=np.random.default_rng(0))

    w_bundled = estimate_welfare(
        graph, model, bundled.allocation, 200, np.random.default_rng(1)
    )
    w_spread = estimate_welfare(
        graph, model, spread.allocation, 200, np.random.default_rng(1)
    )
    print(f"\nbundled seeding (bundleGRD allocation) : {w_bundled.mean:8.1f}")
    print(f"disjoint seeding (item-disj allocation) : {w_spread.mean:8.1f}")

    better = "disjoint" if w_spread.mean > w_bundled.mean else "bundled"
    print(f"\nUnder competition, {better} seeding wins — the mirror image of")
    print("the complementary setting, where bundling dominates.  The paper's")
    print("(1 − 1/e − ε) guarantee applies only to supermodular valuations;")
    print("this example shows why: the objective's structure flips.")


if __name__ == "__main__":
    main()
