"""Quickstart: allocate two complementary items and measure social welfare.

Builds a small scale-free network with weighted-cascade probabilities, sets
up the paper's Configuration 1 utility model (two items, each individually
worth adopting, strictly better together), runs bundleGRD, and compares its
expected social welfare against the item-disjoint baseline and the empty
allocation.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    AdditivePrice,
    GaussianNoise,
    TableValuation,
    UtilityModel,
    WelMaxInstance,
    bundle_grd,
    estimate_welfare,
)
from repro.baselines import item_disjoint
from repro.core.allocation import Allocation
from repro.graph.generators import random_wc_graph


def main() -> None:
    # 1. A social network: 2,000 users, heavy-tailed degrees, edge (u, v)
    #    fires with probability 1/in_degree(v) (the weighted-cascade model).
    graph = random_wc_graph(2000, avg_degree=8, seed=7)
    print(f"network: {graph}")

    # 2. The utility model.  Item prices are 3 and 4; a user values item 1 at
    #    3, item 2 at 4, and the bundle at 8 — supermodular: together the
    #    items are worth 1 more than apart.  Unit Gaussian noise models our
    #    uncertainty about the population's valuation.
    model = UtilityModel(
        TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
        AdditivePrice([3.0, 4.0]),
        GaussianNoise([1.0, 1.0]),
        item_names=("phone", "earbuds"),
    )
    print(f"E[U(phone)] = {model.expected_utility(0b01):+.1f}, "
          f"E[U(earbuds)] = {model.expected_utility(0b10):+.1f}, "
          f"E[U(bundle)] = {model.expected_utility(0b11):+.1f}")

    # 3. The WelMax instance: each item may seed at most 25 users.
    instance = WelMaxInstance.create(graph, model, budgets=[25, 25])

    # 4. bundleGRD: one PRIMA call, then nested prefix assignment.  It never
    #    looks at the utilities — bundling is optimal for complementary items.
    result = bundle_grd(graph, instance.budgets, rng=np.random.default_rng(0))
    welfare = instance.welfare(result.allocation, num_samples=300)
    print(f"\nbundleGRD   welfare = {welfare.mean:8.1f} ± {welfare.stderr:.1f} "
          f"({result.num_rr_sets} RR sets)")

    # 5. Baseline: one item per seed (no bundling).
    baseline = item_disjoint(graph, instance.budgets, rng=np.random.default_rng(0))
    b_welfare = instance.welfare(baseline.allocation, num_samples=300)
    print(f"item-disj   welfare = {b_welfare.mean:8.1f} ± {b_welfare.stderr:.1f}")

    empty = estimate_welfare(graph, model, Allocation.empty(2), num_samples=10)
    print(f"empty       welfare = {empty.mean:8.1f}")

    gain = welfare.mean / max(b_welfare.mean, 1e-9)
    print(f"\nbundling advantage: {gain:.2f}x over item-disjoint seeding")


if __name__ == "__main__":
    main()
