"""UIC vs Com-IC: the GAP correspondence and why welfare ≠ adoptions.

The paper's Eq. (12) maps a two-item UIC utility configuration to the four
GAP parameters of Com-IC (the earlier complementary-diffusion model).  This
example:

1. derives the GAP parameters of Table 3's Configuration 1 analytically and
   verifies them against Monte-Carlo adoption frequencies under UIC;
2. runs the same seed allocation under both models and compares adoption
   counts (Com-IC's objective) with social welfare (UIC's objective),
   illustrating why maximizing adoptions is not the same as maximizing
   welfare — the paper's core motivation.

Run with::

    python examples/model_comparison.py
"""

import numpy as np

from repro.diffusion.comic import estimate_comic_spread
from repro.diffusion.uic import simulate_uic
from repro.experiments.configs import two_item_config
from repro.experiments.gap import gap_from_utility
from repro.graph.generators import random_wc_graph


def mc_gap_check(config, samples: int = 20000) -> None:
    """Verify Eq. (12) by direct sampling of the adoption rule."""
    model = config.model
    rng = np.random.default_rng(0)
    adopt_alone = 0
    adopt_given_other = 0
    for _ in range(samples):
        world = model.sample_noise_world(rng)
        table = model.utility_table(world)
        # q_{i1|∅}: a node desiring only i1 adopts it iff U(i1) >= 0.
        if table[0b01] >= 0.0:
            adopt_alone += 1
        # q_{i1|i2}: having adopted i2, it adds i1 iff U({i1,i2}) >= U(i2).
        if table[0b11] >= table[0b10]:
            adopt_given_other += 1
    analytic = gap_from_utility(model)
    print("GAP parameters (Configuration 1):")
    print(f"  q_i1|∅  analytic {analytic.q_a_empty:.3f}   "
          f"MC {adopt_alone / samples:.3f}")
    print(f"  q_i1|i2 analytic {analytic.q_a_given_b:.3f}   "
          f"MC {adopt_given_other / samples:.3f}")


def main() -> None:
    config = two_item_config(1)
    mc_gap_check(config)

    graph = random_wc_graph(3000, avg_degree=8, seed=31)
    seeds = list(range(25))
    allocation = [(v, 0) for v in seeds] + [(v, 1) for v in seeds]
    gap = gap_from_utility(config.model)

    # Com-IC's metric: expected adopters per item.
    rng = np.random.default_rng(1)
    comic_a = estimate_comic_spread(graph, gap, seeds, seeds, item=0,
                                    num_samples=150, rng=rng)
    comic_b = estimate_comic_spread(graph, gap, seeds, seeds, item=1,
                                    num_samples=150, rng=rng)

    # UIC's metrics: adopters and welfare from the same allocation.
    rng = np.random.default_rng(2)
    adopters_a = adopters_b = welfare = 0.0
    num_samples = 150
    for _ in range(num_samples):
        result = simulate_uic(graph, config.model, allocation, rng)
        adopters_a += len(result.adopters_of(0))
        adopters_b += len(result.adopters_of(1))
        welfare += result.welfare
    adopters_a /= num_samples
    adopters_b /= num_samples
    welfare /= num_samples

    print(f"\nsame 25-seed allocation under both models "
          f"(network: {graph.num_nodes} nodes):")
    print(f"  Com-IC adopters   item1 {comic_a:7.1f}   item2 {comic_b:7.1f}")
    print(f"  UIC    adopters   item1 {adopters_a:7.1f}   item2 {adopters_b:7.1f}")
    print(f"  UIC    welfare    {welfare:7.1f}")
    per_adoption = welfare / max(adopters_a + adopters_b, 1e-9)
    print(f"\nwelfare per adoption: {per_adoption:.2f} — adoption counts alone"
          "\ncannot distinguish a barely-positive-utility adoption from a"
          "\nhigh-surplus bundle adoption; that gap is what WelMax optimizes.")


if __name__ == "__main__":
    main()
