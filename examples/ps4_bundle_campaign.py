"""Viral-marketing campaign with the paper's learned PlayStation parameters.

Reproduces the §4.3.4 scenario end to end:

1. learn item value/noise parameters from (simulated) auction data — the
   offline stand-in for the paper's eBay pipeline;
2. build the Table 5 utility model for the five items
   (console, controller, three games);
3. split a marketing budget 30/30/20/10/10 across the items and run
   bundleGRD on a Twitter-like network;
4. report expected social welfare, adoption counts and which bundle carries
   the welfare.

Run with::

    python examples/ps4_bundle_campaign.py
"""

import numpy as np

from repro import bundle_grd, estimate_adoption, estimate_welfare
from repro.experiments.configs import real_param_budgets
from repro.graph import datasets
from repro.utility.auctions import learn_item_parameters
from repro.utility.itemsets import items_of
from repro.utility.learned import real_utility_model, table5_rows


def main() -> None:
    # 1. The auction-learning pipeline (run here for the console itemset):
    #    simulate English auctions around the ground truth and recover the
    #    value distribution from the observed winning prices only.
    learned = learn_item_parameters(
        true_mean=213.0, true_std=4.0, num_auctions=300, seed=42
    )
    print("auction learning (console): "
          f"value ≈ {learned.value:.1f} (truth 213.0), "
          f"noise σ ≈ {learned.noise_std:.2f} (truth 4.0)")

    # 2. The learned utility model (Table 5).
    model = real_utility_model()
    print("\nTable 5 — learned parameters:")
    for row in table5_rows():
        print(f"  {row['itemset']:24s} price={row['price']:6.1f} "
              f"value={row['value']:6.1f} utility={row['utility']:+6.1f}")

    # 3. The campaign: a Twitter-like network, total budget 400 seeds split
    #    30/30/20/10/10 over (ps, c, g1, g2, g3).
    graph = datasets.load("twitter", scale=0.08)
    budgets = real_param_budgets(400)
    print(f"\nnetwork: {graph}")
    print(f"budgets (ps, c, g1, g2, g3): {budgets}")

    result = bundle_grd(graph, budgets, rng=np.random.default_rng(1))

    # 4. Outcomes.  Only bundles with the console, the controller and at
    #    least two games have positive utility, so the welfare rides on the
    #    top-seeded users receiving the full stack.
    welfare = estimate_welfare(
        graph, model, result.allocation, num_samples=150,
        rng=np.random.default_rng(2),
    )
    adoptions = estimate_adoption(
        graph, model, result.allocation, num_samples=50,
        rng=np.random.default_rng(3),
    )
    print(f"\nexpected social welfare : {welfare.mean:10.1f} ± {welfare.stderr:.1f}")
    print(f"expected item adoptions : {adoptions.mean:10.1f}")

    top_node = result.seed_order[0]
    bundle = result.allocation.items_of_node(top_node)
    names = ", ".join(model.item_name(i) for i in items_of(bundle))
    print(f"top seed (node {top_node}) receives: {{{names}}}")


if __name__ == "__main__":
    main()
