"""Launching a product line: core item + accessories (cone valuations).

Models the paper's Configuration 6/7 scenario: a "core" product (say, a
smartphone) is necessary for any accessory to have value.  All itemsets
containing the core have positive utility — a cone in the itemset lattice.
We compare what happens when the core gets the *largest* seed budget
(cone-max) versus the *smallest* (cone-min): because nothing propagates
without the core, starving it caps the entire campaign's welfare.

Also demonstrates the block-accounting structures of the paper's analysis:
for a sampled noise world we print I*, the block partition, the marginal
gains Δ_i and each block's anchor item and effective budget.

Run with::

    python examples/multi_item_launch.py
"""

import numpy as np

from repro import bundle_grd, estimate_welfare
from repro.experiments.configs import multi_item_config
from repro.graph.generators import random_wc_graph
from repro.utility.blocks import generate_blocks
from repro.utility.itemsets import items_of


def run_cone(config_id: int, label: str, graph) -> None:
    config, budgets = multi_item_config(
        config_id, num_items=5, total_budget=150, seed=3
    )
    result = bundle_grd(graph, budgets, rng=np.random.default_rng(4))
    welfare = estimate_welfare(
        graph, config.model, result.allocation, num_samples=120,
        rng=np.random.default_rng(5),
    )
    core = getattr(config.model.valuation, "core_item", None)
    print(f"{label:10s} budgets={budgets} core=item{core} "
          f"welfare={welfare.mean:9.1f} ± {welfare.stderr:.1f}")


def show_blocks(config_id: int, graph) -> None:
    config, budgets = multi_item_config(
        config_id, num_items=5, total_budget=150, seed=3
    )
    model = config.model
    noise_world = model.sample_noise_world(np.random.default_rng(6))
    table = model.utility_table(noise_world)
    istar = model.best_itemset(table)
    partition = generate_blocks(table, budgets, istar)
    print(f"\nblock accounting for a sampled noise world (config {config_id}):")
    print(f"  I* = {sorted(items_of(istar))}  U(I*) = {table[istar]:.2f}")
    for i, (block, delta, anchor, eff) in enumerate(
        zip(
            partition.blocks,
            partition.deltas,
            partition.anchor_items,
            partition.effective_budgets,
        )
    ):
        print(f"  B{i + 1} = {sorted(items_of(block))}  Δ = {delta:6.2f}  "
              f"anchor item = {anchor}  effective budget = {eff}")
    total = sum(partition.deltas)
    print(f"  Σ Δ_i = {total:.2f} (equals U(I*) — Property 2)")


def main() -> None:
    graph = random_wc_graph(3000, avg_degree=10, seed=11)
    print(f"network: {graph}\n")
    print("core item placement vs social welfare:")
    run_cone(6, "cone-max", graph)   # core = max-budget item
    run_cone(7, "cone-min", graph)   # core = min-budget item
    show_blocks(6, graph)


if __name__ == "__main__":
    main()
