"""PRIMA as a standalone prefix-preserving influence-maximization oracle.

The paper's seed-selection component is independently useful: one PRIMA run
over a budget *vector* yields an ordered seed list whose every prefix is a
(1 − 1/e − ε)-approximation for the corresponding budget.  That is exactly
the "influence oracle" use case (answer seed queries for any budget without
recomputing) that motivated SKIM — but built on IMM's far smaller sample
sizes.

This example runs PRIMA once for budgets {10, 25, 50}, then shows that each
prefix's Monte-Carlo spread matches a dedicated IMM run for that budget,
while a single non-prefix-aware ordering can't serve all budgets at once.

Run with::

    python examples/prefix_preserving_im.py
"""

import numpy as np

from repro.diffusion.ic import estimate_spread
from repro.graph.generators import random_wc_graph
from repro.rrset import imm, prima


def main() -> None:
    graph = random_wc_graph(4000, avg_degree=8, seed=21)
    budgets = [50, 25, 10]
    print(f"network: {graph}")
    print(f"budget vector: {budgets}\n")

    result = prima(graph, budgets, epsilon=0.5, ell=1.0,
                   rng=np.random.default_rng(0))
    print(f"PRIMA: one run, {result.num_rr_sets} RR sets, "
          f"{len(result.seeds)} ordered seeds\n")

    rng = np.random.default_rng(1)
    print(f"{'budget':>6}  {'PRIMA prefix spread':>20}  {'dedicated IMM spread':>21}")
    for k in sorted(budgets):
        prefix = result.seeds_for_budget(k)
        prefix_spread = estimate_spread(graph, prefix, 300, rng)
        dedicated = imm(graph, k, epsilon=0.5, ell=1.0,
                        rng=np.random.default_rng(2))
        dedicated_spread = estimate_spread(graph, dedicated.seeds, 300, rng)
        ratio = prefix_spread / max(dedicated_spread, 1e-9)
        print(f"{k:>6}  {prefix_spread:>20.1f}  {dedicated_spread:>21.1f}"
              f"   (ratio {ratio:.3f})")

    print("\nEvery prefix is a near-optimal seed set for its budget — a")
    print("single PRIMA run serves the whole budget vector, which is what")
    print("lets bundleGRD allocate any number of items with one selection.")


if __name__ == "__main__":
    main()
