"""Fig. 9(d) — scalability of bundleGRD on BFS-grown Orkut subgraphs.

Two probability settings (weighted cascade and fixed p=0.01), uniform
per-item budget 50.  Paper shapes asserted: running time grows (roughly
linearly) with the network percentage while welfare grows sublinearly, and
even the full stand-in completes in seconds.
"""


from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments.fig9_scalability import run_fig9_scalability, runs_as_rows

PERCENTAGES = (0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig9d_scalability(benchmark):
    def run():
        return run_fig9_scalability(
            network="orkut",
            scale=BENCH_SCALE,
            percentages=PERCENTAGES,
            budget=50,
            num_samples=30,
        )

    runs = run_once(benchmark, run)
    record(
        "fig9d_scalability",
        runs_as_rows(runs),
        header=f"orkut scale={BENCH_SCALE}",
    )

    for setting in ("wc", "fixed"):
        series = [r for r in runs if r.setting == setting]
        # network grows as requested
        assert series[-1].num_nodes > series[0].num_nodes
        # runtime grows with size (full run costs more than the smallest)
        assert series[-1].seconds > 0.5 * series[0].seconds
        # welfare grows with network size but stays within a small factor of
        # linear (a 20% BFS subgraph is peripherally sparse, so the ratio can
        # sit slightly above the 5x linear prediction at bench scale)
        assert series[-1].welfare < 10.0 * max(series[0].welfare, 1.0)
        # welfare does not shrink as the network grows
        assert series[-1].welfare >= 0.8 * series[0].welfare
