"""Ablation — SKIM vs PRIMA as prefix-preserving seed selectors.

§2.1: SKIM already produces a prefix-preserving ordering, but "does not
dominate TIM in performance ... there is a natural motivation to build a
prefix-preserving IM algorithm by adapting IMM" — that adaptation is PRIMA.
This ablation runs both on the same graph and budget range and compares
prefix quality and preprocessing cost: the prefixes must be equivalent in
spread, with PRIMA cheaper at matched estimate quality (SKIM's forward
residual-coverage evaluations are its cost center in this formulation).
"""

import time

import numpy as np

from _bench_utils import BENCH_SCALE, record, run_once
from repro.diffusion.ic import estimate_spread
from repro.graph import datasets
from repro.rrset.prima import prima
from repro.rrset.skim import skim

BUDGETS = [40, 20, 10, 5]


def test_ablation_skim_vs_prima(benchmark):
    graph = datasets.load("douban-book", scale=BENCH_SCALE)

    def run():
        t0 = time.perf_counter()
        prima_result = prima(graph, BUDGETS, rng=np.random.default_rng(0))
        prima_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        skim_result = skim(
            graph, max(BUDGETS), num_instances=48,
            rng=np.random.default_rng(0),
        )
        skim_seconds = time.perf_counter() - t0
        return prima_result, prima_seconds, skim_result, skim_seconds

    prima_result, prima_seconds, skim_result, skim_seconds = run_once(
        benchmark, run
    )

    rng = np.random.default_rng(1)
    rows = []
    ratios = []
    for k in sorted(BUDGETS):
        spread_prima = estimate_spread(
            graph, prima_result.seeds_for_budget(k), 200, rng
        )
        spread_skim = estimate_spread(
            graph, skim_result.seeds_for_budget(k), 200, rng
        )
        ratios.append(spread_skim / max(spread_prima, 1e-9))
        rows.append(
            {
                "budget": k,
                "prima_prefix_spread": round(spread_prima, 1),
                "skim_prefix_spread": round(spread_skim, 1),
            }
        )
    rows.append(
        {
            "budget": "TIME",
            "prima_prefix_spread": f"{prima_seconds:.2f}s",
            "skim_prefix_spread": f"{skim_seconds:.2f}s",
        }
    )
    record(
        "ablation_skim_vs_prima", rows,
        header=f"douban-book scale={BENCH_SCALE}",
    )

    # Both orderings are prefix-preserving: spreads agree within MC slack.
    for ratio in ratios:
        assert 0.7 <= ratio <= 1.4
