"""Fig. 8(b, c) — welfare and running time vs total budget, real Param.

The learned PlayStation parameters (Table 5), budgets split 30/30/20/10/10.
Paper shapes asserted: bundleGRD's welfare beats bundle-disj's (up to 2x at
high budget in the paper), its running time is lower (bundle-disj makes
multiple IMM calls), and welfare grows with the total budget.  item-disj is
omitted — its welfare is identically ~0 here, as the paper notes.
"""


from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.experiments.fig8_real import run_real_param_sweep

TOTAL_BUDGETS = (100, 300, 500)


def test_fig8bc_real_param_sweep(benchmark):
    def run():
        return run_real_param_sweep(
            network="twitter",
            scale=BENCH_SCALE,
            total_budgets=TOTAL_BUDGETS,
            num_samples=BENCH_SAMPLES,
        )

    runs = run_once(benchmark, run)
    rows = [
        {
            "algorithm": r.algorithm,
            "total_budget": r.total_budget,
            "budgets": "/".join(str(b) for b in r.budgets),
            "welfare": round(r.welfare, 1),
            "seconds": round(r.seconds, 3),
        }
        for r in runs
    ]
    record("fig8bc_real_params", rows, header=f"twitter scale={BENCH_SCALE}")

    welfare = {}
    seconds = {}
    for r in runs:
        welfare.setdefault(r.algorithm, []).append(r.welfare)
        seconds.setdefault(r.algorithm, []).append(r.seconds)
    # bundleGRD wins on welfare at the largest budget...
    assert welfare["bundleGRD"][-1] >= 0.95 * welfare["bundle-disj"][-1]
    # ...and is cheaper (bundle-disj pays multiple IMM calls).
    assert seconds["bundleGRD"][-1] < seconds["bundle-disj"][-1]
    # welfare grows with budget
    assert welfare["bundleGRD"][-1] > welfare["bundleGRD"][0]
