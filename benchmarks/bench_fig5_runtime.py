"""Fig. 5 — running times of the five algorithms on four networks (config 1).

Paper shapes asserted per panel: the TIM-based Com-IC baselines are at least
an order of magnitude slower than bundleGRD; bundleGRD is not slower than
item-disj by more than a small factor (the paper reports it ~1.5x *faster*;
at bench scale we assert the weaker direction-free bound to keep the check
robust to small-n noise).  The Twitter panel omits the Com-IC algorithms,
exactly as the paper does after its 6-hour timeout.
"""

import pytest

from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments._two_item import runs_as_rows
from repro.experiments.fig5_runtime import (
    COMIC_NETWORKS,
    FIG5_NETWORKS,
    run_fig5,
    runtime_series,
)

BUDGETS = [(10, 10), (50, 50)]


@pytest.mark.parametrize("network", FIG5_NETWORKS)
def test_fig5_panel(benchmark, network):
    def run():
        return run_fig5(
            networks=(network,),
            scale=BENCH_SCALE,
            budget_vectors=BUDGETS,
            num_samples=5,  # time is the metric; minimal welfare sampling
        )

    panels = run_once(benchmark, run)
    runs = panels[network]
    record(
        f"fig5_{network}",
        runs_as_rows(runs),
        header=f"scale={BENCH_SCALE}",
    )

    series = runtime_series(runs)
    if network in COMIC_NETWORKS:
        assert min(series["RR-CIM"]) > 3 * max(series["bundleGRD"])
        assert min(series["RR-SIM+"]) > 3 * max(series["bundleGRD"])
    else:
        assert "RR-CIM" not in series  # mirrors the paper's Twitter timeout
    # bundleGRD within a small factor of item-disj (paper: strictly faster).
    assert max(series["bundleGRD"]) < 3 * max(series["item-disj"])
