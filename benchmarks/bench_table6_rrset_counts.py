"""Table 6 — RR-set counts: bundleGRD vs MAX_IMM vs IMM_MAX.

Three budget distributions over five items (uniform / large skew / moderate
skew).  Paper shape asserted: under the uniform distribution the three
counts are *exactly equal* (PRIMA with one distinct budget is IMM), and in
every distribution bundleGRD's count matches MAX_IMM (it never needs more RR
sets than the worst single-budget IMM run) — the memory-parity claim.
"""


from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments.table6_rrsets import rows_as_dicts, run_table6


def test_table6_rrset_counts(benchmark):
    def run():
        return run_table6(
            network="twitter",
            scale=BENCH_SCALE,
            total_budget=500,
        )

    rows = run_once(benchmark, run)
    record(
        "table6_rrset_counts",
        rows_as_dicts(rows),
        header=f"twitter scale={BENCH_SCALE}",
    )

    by_name = {r.distribution: r for r in rows}
    uniform = by_name["uniform"]
    assert uniform.bundle_grd == uniform.max_imm == uniform.imm_max
    for row in rows:
        # bundleGRD's single PRIMA run never exceeds the worst IMM run by
        # more than rounding noise — IMM-equivalent memory (Table 6's claim).
        assert row.bundle_grd <= 1.05 * row.max_imm
