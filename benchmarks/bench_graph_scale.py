"""Web-scale graph pipeline benchmark: ingest → RR sets → forward.

Proves the :mod:`repro.graph.bigcsr` path end to end at 1M+ nodes: a
synthetic SNAP-style edge list is streamed through the two-pass ingester
into a ``.graph`` CSR file, memory-mapped back in O(1), fed to PRIMA
RR-set generation plus greedy max-coverage seed selection, and finished
with a pooled forward Com-IC spread estimate — the pool attaching the
mmap'd arrays **without a shared-memory copy**.  Records ingest edges/s,
peak RSS, the ``.graph`` file size, and per-phase wall-clock measured
through :func:`repro.obs.stopwatch`.

Scale knobs:

* ``REPRO_BENCH_GRAPH_NODES``   — node count (default 1,100,000; CI runs
  100,000)
* ``REPRO_BENCH_GRAPH_DEGREE``  — average out-degree of the synthetic
  edge list (default 8)
* ``REPRO_BENCH_GRAPH_RR``      — RR sets to sample (default n // 10,
  floor 20,000)

Gates (all scales):

* ``load_graph(verify=True)`` — the mmap'd arrays hash back to the
  fingerprint the ingester recorded;
* the pooled forward estimate is **byte-identical** to the in-process
  estimate of the same shard structure (grouping/adaptive sharding never
  touches a number);
* the pooled dispatch created **zero** shared-memory segments (the
  file-backed attach path ran).

Extra gates at CI scale (``nodes <= 300,000``):

* the mmap-loaded graph's fingerprint equals an independent in-memory
  construction from the same records (dense ids, WC weighting);
* ingest + load beats the legacy ``read_edge_list`` path by
  ``MIN_SPEEDUP`` (default 1.3x, relaxed via
  ``REPRO_BENCH_MIN_SPEEDUP``).

Writes ``BENCH_graph_scale.json`` at the repository root.
"""

import json
import os
import resource
from pathlib import Path

import numpy as np

from _bench_utils import min_speedup, record, run_once
from repro import obs
from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.engine import EngineContext
from repro.graph.bigcsr import ingest_edge_list, load_graph
from repro.graph.digraph import InfluenceGraph
from repro.graph.io import graph_fingerprint, read_edge_list
from repro.parallel import FORWARD_SHARDS, get_pool, shutdown_pool
from repro.rrset.node_selection import greedy_max_coverage
from repro.rrset.rrgen import RRCollection

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_graph_scale.json"

NUM_NODES = int(os.environ.get("REPRO_BENCH_GRAPH_NODES", "1100000"))
AVG_DEGREE = int(os.environ.get("REPRO_BENCH_GRAPH_DEGREE", "8"))
NUM_RR_SETS = int(
    os.environ.get("REPRO_BENCH_GRAPH_RR", str(max(20_000, NUM_NODES // 10)))
)
NUM_SEEDS = 50
FORWARD_SAMPLES = 32

#: Legacy-path comparison (and exact in-memory parity) only below this —
#: read_edge_list builds per-line Python tuples and a Python dedup dict,
#: which at millions of edges is exactly the cost this PR removes.
SMALL_SCALE_NODES = 300_000

MIN_SPEEDUP = min_speedup(1.3)

try:
    _CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    _CORES = os.cpu_count() or 1
NUM_PROCESSES = max(2, min(8, _CORES))


def _peak_rss_mb() -> float:
    """Peak RSS of this process in MiB (Linux reports KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _timed(fn):
    """Run ``fn`` under an obs stopwatch; returns ``(result, seconds)``."""
    tick = {}
    with obs.stopwatch(tick):
        result = fn()
    return result, tick["seconds"]


def _write_edge_list(path: Path, n: int, m: int, seed: int) -> int:
    """Stream a synthetic unweighted SNAP-style edge list to ``path``.

    Uniform random endpoints, so the file naturally contains self-loops
    and duplicate edges for the ingester to clean.  Returns the number of
    edge records written.
    """
    rng = np.random.default_rng(seed)
    chunk = 1_000_000
    with open(path, "w") as f:
        f.write("# synthetic SNAP-style edge list (bench_graph_scale)\n")
        f.write(f"# nodes {n} edges {m}\n")
        written = 0
        while written < m:
            take = min(chunk, m - written)
            u = rng.integers(0, n, take)
            v = rng.integers(0, n, take)
            f.write(
                "\n".join(f"{a} {b}" for a, b in zip(u.tolist(), v.tolist()))
            )
            f.write("\n")
            written += take
    return m


def _reference_graph(path: Path, n: int) -> InfluenceGraph:
    """Independent in-memory construction: dense ids + WC weighting."""
    pairs = np.loadtxt(path, dtype=np.int64, comments="#")
    u, v = pairs[:, 0], pairs[:, 1]
    keep = u != v
    u, v = u[keep], v[keep]
    in_deg = np.bincount(v, minlength=n)
    probs = 1.0 / in_deg[v]
    return InfluenceGraph(n, zip(u.tolist(), v.tolist(), probs.tolist()))


def _forward_estimate(graph, seeds, backend_processes):
    shutdown_pool()
    get_pool(backend_processes)
    try:
        return estimate_comic_spread(
            graph,
            ComICModel(0.1, 0.3, 0.1, 0.3),
            seeds,
            [],
            item=0,
            num_samples=FORWARD_SAMPLES,
            ctx=EngineContext.create(backend="parallel", seed=7),
        )
    finally:
        pool = get_pool()
        stats = pool.stats()
        segments = list(pool.segment_names)
        shutdown_pool()
        _forward_estimate.last = (stats, segments)


def _run_pipeline(tmp_dir: Path) -> dict:
    edge_path = tmp_dir / "scale.txt"
    graph_path = tmp_dir / "scale.graph"
    row = {
        "nodes": NUM_NODES,
        "avg_degree": AVG_DEGREE,
        "effective_cores": _CORES,
        "processes": NUM_PROCESSES,
    }

    records, gen_s = _timed(
        lambda: _write_edge_list(
            edge_path, NUM_NODES, NUM_NODES * AVG_DEGREE, seed=2026
        )
    )
    row["records"] = records
    row["generate_s"] = round(gen_s, 3)

    stats, ingest_s = _timed(
        lambda: ingest_edge_list(edge_path, graph_path)
    )
    row["edges"] = stats.num_edges
    row["self_loops"] = stats.self_loops
    row["duplicates"] = stats.duplicates
    row["ingest_s"] = round(ingest_s, 3)
    row["ingest_edges_per_s"] = int(records / ingest_s)
    row["graph_file_mb"] = round(graph_path.stat().st_size / 2**20, 1)

    graph, load_s = _timed(lambda: load_graph(graph_path))
    row["load_s"] = round(load_s, 4)
    # Full-array verification: mmap'd bytes hash to the recorded print.
    _, verify_s = _timed(
        lambda: load_graph(graph_path, verify=True)
    )
    row["verify_s"] = round(verify_s, 3)
    row["fingerprint"] = graph_fingerprint(graph)[:16]

    legacy_s = parity = None
    if NUM_NODES <= SMALL_SCALE_NODES:
        ref, _ = _timed(lambda: _reference_graph(edge_path, NUM_NODES))
        parity = graph_fingerprint(ref) == graph_fingerprint(graph)
        (legacy_graph, _), legacy_s = _timed(
            lambda: read_edge_list(edge_path)
        )
        del legacy_graph
        row["legacy_read_s"] = round(legacy_s, 3)
        row["ingest_speedup_vs_legacy"] = round(
            legacy_s / (ingest_s + load_s), 2
        )
    row["in_memory_parity"] = parity

    rr, rr_s = _timed(lambda: _sample_rr(graph))
    members, offsets = rr
    row["rr_sets"] = NUM_RR_SETS
    row["rr_s"] = round(rr_s, 3)

    (seeds, covered), greedy_s = _timed(
        lambda: greedy_max_coverage(
            NUM_NODES, members, offsets, NUM_SEEDS
        )
    )
    row["seeds"] = NUM_SEEDS
    row["covered_sets"] = int(covered)
    row["greedy_s"] = round(greedy_s, 3)

    pooled, forward_s = _timed(
        lambda: _forward_estimate(graph, list(seeds), NUM_PROCESSES)
    )
    pool_stats, segments = _forward_estimate.last
    inline, _ = _timed(
        lambda: _forward_estimate(graph, list(seeds), 0)
    )
    row["forward_samples"] = FORWARD_SAMPLES
    row["forward_s"] = round(forward_s, 3)
    row["forward_estimate"] = round(pooled, 3)
    row["forward_identical"] = bool(pooled == inline)
    row["pool_tasks"] = pool_stats["tasks_dispatched"]
    row["shm_segments"] = len(segments)
    row["peak_rss_mb"] = round(_peak_rss_mb(), 1)
    return row


def _sample_rr(graph):
    collection = RRCollection(
        graph, ctx=EngineContext.create(backend="batched", seed=11)
    )
    collection.extend_to(NUM_RR_SETS)
    members, offsets = collection.flat_arrays()
    return members.copy(), offsets.copy()


def _run_scale_bench() -> list:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-graph-scale-") as tmp:
        return [_run_pipeline(Path(tmp))]


def _check_row(row: dict) -> None:
    assert row["forward_identical"], row
    assert row["shm_segments"] == 0, row
    assert row["pool_tasks"] >= min(FORWARD_SAMPLES, FORWARD_SHARDS), row
    if row["nodes"] <= SMALL_SCALE_NODES:
        assert row["in_memory_parity"], row
        if row["effective_cores"] >= 1:
            assert row["ingest_speedup_vs_legacy"] >= MIN_SPEEDUP, row


def test_graph_scale(benchmark):
    rows = run_once(benchmark, _run_scale_bench)
    record(
        "graph_scale",
        rows,
        header="streaming ingest -> mmap'd .graph -> RR sets -> forward",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")
    for row in rows:
        _check_row(row)


if __name__ == "__main__":
    results = _run_scale_bench()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
    for row in results:
        _check_row(row)
