"""RR-set engine benchmark: legacy pre-refactor pipeline vs batched engine.

Compares end-to-end RR-set *generation + NodeSelection* between

* **legacy** — a faithful reconstruction of the seed-commit pipeline
  (commit eefbe22): per-set Python reverse BFS via ``generate_rr_set``,
  list-of-arrays storage, per-element inverted-index list appends, and the
  per-element greedy selection loop.  The current ``backend="sequential"``
  already benefits from the flat-CSR storage refactor, so it is *not* the
  legacy baseline — the old pipeline is reconstructed here verbatim.
* **batched** — ``backend="batched"`` flat-frontier sampling plus the
  vectorized greedy (segmented gather + bincount updates).

Writes ``BENCH_rrset_engine.json`` at the repository root with per-graph
rows (nodes, sets/sec for both paths, speedups) to seed the performance
trajectory, alongside the usual ``benchmarks/results`` artifact.

The acceptance gate asserted here: on the >= 20k-node generated graph the
batched pipeline is at least 5x faster end to end than the legacy
pipeline, and both pipelines pick seed sets of equivalent coverage
quality (same collection distribution, same greedy contract).
"""

import json
import time
from pathlib import Path

import numpy as np

from _bench_utils import min_speedup, record, run_once
from repro.graph.generators import erdos_renyi, random_wc_graph
from repro.graph.weighting import fixed_probability
from repro.rrset.node_selection import node_selection
from repro.rrset.rrgen import RRCollection, generate_rr_set

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_rrset_engine.json"

RNG_SEED = 17

#: Minimum end-to-end speedup asserted on the gate row.  5x locally (the
#: acceptance criterion; typically 6-10x on a quiet machine); CI sets a
#: conservative bound via the env knob because wall-clock ratios on shared
#: runners are noisy.
MIN_SPEEDUP = min_speedup(5.0)


def _legacy_pipeline(graph, num_sets, k):
    """The seed-commit pipeline, reconstructed: list storage + Python greedy."""
    n = graph.num_nodes
    rng = np.random.default_rng(RNG_SEED)
    t0 = time.perf_counter()
    sets = []
    index = [[] for _ in range(n)]
    cover_counts = np.zeros(n, dtype=np.int64)
    for _ in range(num_sets):
        rr = generate_rr_set(graph, rng)
        rr_id = len(sets)
        sets.append(rr)
        for u in rr:
            u = int(u)
            index[u].append(rr_id)
            cover_counts[u] += 1
    gen_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    gains = cover_counts.copy()
    covered = np.zeros(num_sets, dtype=bool)
    seeds = []
    covered_total = 0
    for _ in range(min(k, n)):
        u = int(np.argmax(gains))
        seeds.append(u)
        if gains[u] > 0:
            for rr_id in index[u]:
                if covered[rr_id]:
                    continue
                covered[rr_id] = True
                covered_total += 1
                for w in sets[rr_id]:
                    gains[int(w)] -= 1
        gains[u] = -1
    sel_seconds = time.perf_counter() - t0
    return {
        "gen_seconds": gen_seconds,
        "sel_seconds": sel_seconds,
        "total_seconds": gen_seconds + sel_seconds,
        "fraction": covered_total / num_sets,
    }


def _batched_pipeline(graph, num_sets, k):
    rng = np.random.default_rng(RNG_SEED)
    t0 = time.perf_counter()
    coll = RRCollection(graph, rng, backend="batched")
    coll.generate(num_sets)
    gen_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    _, fraction = node_selection(coll, k)
    sel_seconds = time.perf_counter() - t0
    return {
        "gen_seconds": gen_seconds,
        "sel_seconds": sel_seconds,
        "total_seconds": gen_seconds + sel_seconds,
        "fraction": fraction,
    }


def _graphs():
    """(label, graph, num_sets, k) rows; the last row is the gate."""
    yield (
        "wc_5k",
        random_wc_graph(5_000, avg_degree=8, seed=5),
        10_000,
        50,
    )
    # Near-critical fixed-probability weighting: RR sets average ~10 nodes,
    # the regime where per-node Python overhead dominates the legacy path.
    arcs = erdos_renyi(20_000, 10, seed=5)
    yield ("er_20k_p0.09", fixed_probability(20_000, arcs, 0.09), 10_000, 100)


def _run_engine_comparison():
    # Warm both paths once (allocator + numpy caches) so the measured rows
    # reflect steady-state throughput rather than first-touch costs.
    warm = random_wc_graph(1_000, avg_degree=6, seed=1)
    _legacy_pipeline(warm, 500, 5)
    _batched_pipeline(warm, 500, 5)

    rows = []
    for label, graph, num_sets, k in _graphs():
        legacy = _legacy_pipeline(graph, num_sets, k)
        batched = _batched_pipeline(graph, num_sets, k)
        rows.append(
            {
                "graph": label,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "rr_sets": num_sets,
                "k": k,
                "legacy_sets_per_sec": round(
                    num_sets / legacy["gen_seconds"], 1
                ),
                "batched_sets_per_sec": round(
                    num_sets / batched["gen_seconds"], 1
                ),
                "legacy_total_s": round(legacy["total_seconds"], 3),
                "batched_total_s": round(batched["total_seconds"], 3),
                "speedup_gen": round(
                    legacy["gen_seconds"] / batched["gen_seconds"], 2
                ),
                "speedup_total": round(
                    legacy["total_seconds"] / batched["total_seconds"], 2
                ),
                "legacy_fraction": round(legacy["fraction"], 4),
                "batched_fraction": round(batched["fraction"], 4),
            }
        )
    return rows


def test_rrset_engine_speedup(benchmark):
    rows = run_once(benchmark, _run_engine_comparison)
    record("rrset_engine", rows, header="legacy vs batched RR engine")
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    big = rows[-1]
    assert big["nodes"] >= 20_000
    # Acceptance gate: >= MIN_SPEEDUP end-to-end on the large generated graph.
    assert big["speedup_total"] >= MIN_SPEEDUP, big
    # Both paths select seed sets of equivalent coverage quality.
    for row in rows:
        assert row["batched_fraction"] >= 0.8 * row["legacy_fraction"]


if __name__ == "__main__":
    results = _run_engine_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
