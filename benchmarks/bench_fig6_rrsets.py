"""Fig. 6 — number of RR sets generated (the memory proxy), config 1.

Paper shape asserted per panel: the TIM-based Com-IC algorithms generate an
order of magnitude more RR sets than the IMM-based three, whose counts are
mutually comparable.
"""

import pytest

from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments._two_item import runs_as_rows
from repro.experiments.fig5_runtime import COMIC_NETWORKS, FIG5_NETWORKS
from repro.experiments.fig6_rrsets import rrset_series, run_fig6

BUDGETS = [(10, 10), (50, 50)]


@pytest.mark.parametrize("network", FIG5_NETWORKS)
def test_fig6_panel(benchmark, network):
    def run():
        return run_fig6(
            networks=(network,),
            scale=BENCH_SCALE,
            budget_vectors=BUDGETS,
        )

    panels = run_once(benchmark, run)
    runs = panels[network]
    record(
        f"fig6_{network}",
        runs_as_rows(runs),
        header=f"scale={BENCH_SCALE}",
    )

    series = rrset_series(runs)
    if network in COMIC_NETWORKS:
        assert min(series["RR-SIM+"]) > 5 * max(series["bundleGRD"])
        assert min(series["RR-CIM"]) > 5 * max(series["bundleGRD"])
    # The IMM-based algorithms stay within a small factor of each other.
    assert max(series["bundleGRD"]) < 3 * max(series["item-disj"])
    assert max(series["item-disj"]) < 3 * max(series["bundleGRD"])
