"""Ablation — shared (population) noise vs personalized (per-node) noise.

§5 proposes personalized noise as future work and notes the approximation
guarantee does not carry over.  This ablation measures bundleGRD's welfare
under both regimes on the same allocations: with zero-mean noise either way,
the expected welfare should remain in the same ballpark, and bundleGRD's
dominance over item-disj should survive personalization — evidence the
greedy bundling heuristic is robust beyond its proven regime.
"""

import numpy as np
import pytest

from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.baselines.item_disjoint import item_disjoint
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.personalized import estimate_welfare_personalized
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.configs import two_item_config
from repro.graph import datasets

BUDGETS = [30, 30]


def test_ablation_personalized_noise(benchmark):
    graph = datasets.load("douban-movie", scale=BENCH_SCALE)
    model = two_item_config(1).model

    def run():
        bg = bundle_grd(graph, BUDGETS, rng=np.random.default_rng(0))
        idj = item_disjoint(graph, BUDGETS, rng=np.random.default_rng(0))
        out = {}
        for name, alloc in (
            ("bundleGRD", bg.allocation),
            ("item-disj", idj.allocation),
        ):
            shared = estimate_welfare(
                graph, model, alloc, BENCH_SAMPLES, np.random.default_rng(1)
            ).mean
            personal = estimate_welfare_personalized(
                graph, model, alloc, BENCH_SAMPLES, np.random.default_rng(1)
            )
            out[name] = (shared, personal)
        return out

    results = run_once(benchmark, run)
    rows = [
        {
            "algorithm": name,
            "shared_noise_welfare": round(shared, 1),
            "personalized_welfare": round(personal, 1),
        }
        for name, (shared, personal) in results.items()
    ]
    record(
        "ablation_personalized_noise", rows,
        header=f"douban-movie scale={BENCH_SCALE}, config 1",
    )

    bg_shared, bg_personal = results["bundleGRD"]
    id_shared, id_personal = results["item-disj"]
    # Same ballpark across noise regimes (zero-mean either way).
    assert bg_personal == pytest.approx(bg_shared, rel=0.6)
    # The bundling advantage survives personalization.
    assert bg_personal > id_personal
