#!/usr/bin/env python3
"""Chart the benchmark trajectory from ``benchmarks/results/bench_all.csv``.

Companion to :mod:`to_csv`: that script flattens every ``BENCH_*.json``
artifact into one CSV; this one turns the CSV into PNG charts under
``benchmarks/results/plots/``:

* ``speedups.png``   — every ``speedup``-style column across benches, one
  bar per (bench, measurement) row, with the common 1.3x gate line;
* ``wall_clock.png`` — per-bench stacked phase seconds (columns ending in
  ``_s``), log scale, so minutes-scale builds and millisecond serves fit
  one picture;
* ``graph_scale.png`` — the web-scale ingest pipeline (rows of
  ``bench_graph_scale``): ingest throughput and peak RSS per node count.

matplotlib is an **optional** dependency everywhere in this repo; when it
is missing this script prints a loud SKIP and exits 0 so ``run_all.sh``
pipelines never fail on a headless box without plotting wheels.

Usage::

    python benchmarks/to_csv.py benchmarks/results/bench_all.csv
    python benchmarks/plot_all.py [--csv PATH] [--out DIR]
"""

from __future__ import annotations

import argparse
import csv
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List

RESULTS_DIR = Path(__file__).resolve().parent / "results"
DEFAULT_CSV = RESULTS_DIR / "bench_all.csv"
DEFAULT_OUT = RESULTS_DIR / "plots"

#: The shared wall-clock gate most speedup benches assert (documentation
#: line on the chart, not a gate here).
GATE = 1.3


def _float(value: str) -> float | None:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


def load_rows(csv_path: Path) -> List[Dict[str, str]]:
    with csv_path.open(newline="", encoding="utf-8") as stream:
        return list(csv.DictReader(stream))


def _plot_speedups(plt, rows, out_dir: Path) -> bool:
    labels, values = [], []
    for row in rows:
        for key, raw in row.items():
            if "speedup" not in key:
                continue
            value = _float(raw)
            if value is None:
                continue
            suffix = "" if key == "speedup" else f":{key}"
            tag = row.get("estimator") or row.get("nodes") or ""
            tag = f"/{tag}" if tag else ""
            labels.append(f"{row['bench']}{tag}{suffix}")
            values.append(value)
    if not values:
        return False
    fig, ax = plt.subplots(figsize=(8, max(2.5, 0.4 * len(values))))
    ax.barh(range(len(values)), values, color="#2a6f97")
    ax.axvline(GATE, color="#c1121f", linestyle="--", label=f"{GATE}x gate")
    ax.set_yticks(range(len(values)), labels, fontsize=7)
    ax.set_xlabel("speedup (x)")
    ax.set_title("Benchmark speedups")
    ax.legend(loc="lower right", fontsize=7)
    fig.tight_layout()
    fig.savefig(out_dir / "speedups.png", dpi=150)
    plt.close(fig)
    return True


def _plot_wall_clock(plt, rows, out_dir: Path) -> bool:
    totals: Dict[str, float] = defaultdict(float)
    for row in rows:
        for key, raw in row.items():
            if not key.endswith("_s"):
                continue
            value = _float(raw)
            if value is not None and value > 0:
                totals[row["bench"]] += value
    if not totals:
        return False
    benches = sorted(totals)
    fig, ax = plt.subplots(figsize=(8, max(2.5, 0.35 * len(benches))))
    ax.barh(benches, [totals[b] for b in benches], color="#386641")
    ax.set_xscale("log")
    ax.set_xlabel("summed phase wall-clock (s, log)")
    ax.set_title("Wall-clock per bench (sum of *_s columns)")
    ax.tick_params(axis="y", labelsize=7)
    fig.tight_layout()
    fig.savefig(out_dir / "wall_clock.png", dpi=150)
    plt.close(fig)
    return True


def _plot_graph_scale(plt, rows, out_dir: Path) -> bool:
    scale_rows = [
        row
        for row in rows
        if row["bench"] == "graph_scale"
        and _float(row.get("nodes")) is not None
    ]
    if not scale_rows:
        return False
    scale_rows.sort(key=lambda row: _float(row["nodes"]) or 0.0)
    nodes = [_float(row["nodes"]) for row in scale_rows]
    eps = [_float(row.get("ingest_edges_per_s")) for row in scale_rows]
    rss = [_float(row.get("peak_rss_mb")) for row in scale_rows]
    fig, (ax1, ax2) = plt.subplots(1, 2, figsize=(9, 3.2))
    ax1.plot(nodes, eps, marker="o", color="#2a6f97")
    ax1.set_xlabel("nodes")
    ax1.set_ylabel("ingest edges/s")
    ax1.set_title("Streaming ingest throughput")
    ax2.plot(nodes, rss, marker="o", color="#bc4749")
    ax2.set_xlabel("nodes")
    ax2.set_ylabel("peak RSS (MiB)")
    ax2.set_title("Pipeline peak memory")
    for ax in (ax1, ax2):
        ax.ticklabel_format(style="plain")
    fig.tight_layout()
    fig.savefig(out_dir / "graph_scale.png", dpi=150)
    plt.close(fig)
    return True


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--csv", type=Path, default=DEFAULT_CSV,
        help=f"flattened bench CSV (default {DEFAULT_CSV})",
    )
    parser.add_argument(
        "--out", type=Path, default=DEFAULT_OUT,
        help=f"output directory for PNGs (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        print(
            "SKIP plot_all: matplotlib is not installed — charts not "
            "generated (the CSV itself is the artifact; install "
            "matplotlib to render PNGs)",
            file=sys.stderr,
        )
        return 0

    if not args.csv.exists():
        print(
            f"plot_all: {args.csv} not found — run "
            "'python benchmarks/to_csv.py benchmarks/results/bench_all.csv' "
            "first",
            file=sys.stderr,
        )
        return 1
    rows = load_rows(args.csv)
    if not rows:
        print(f"plot_all: {args.csv} has no rows", file=sys.stderr)
        return 1

    args.out.mkdir(parents=True, exist_ok=True)
    made = []
    if _plot_speedups(plt, rows, args.out):
        made.append("speedups.png")
    if _plot_wall_clock(plt, rows, args.out):
        made.append("wall_clock.png")
    if _plot_graph_scale(plt, rows, args.out):
        made.append("graph_scale.png")
    print(f"wrote {len(made)} charts to {args.out}: {' '.join(made)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
