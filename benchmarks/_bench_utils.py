"""Shared benchmark plumbing.

Every bench runs its experiment exactly once inside ``benchmark.pedantic``
(the experiments are minutes-scale; statistical repetition happens *inside*
them via Monte-Carlo sampling), prints the regenerated table/figure rows, and
appends them to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be
assembled from artifacts.

Scale knobs (overridable via environment):

* ``REPRO_BENCH_SCALE``       — dataset node-count multiplier (default 0.05)
* ``REPRO_BENCH_SAMPLES``     — Monte-Carlo samples per welfare estimate (60)
* ``REPRO_BENCH_MIN_SPEEDUP`` — speedup-gate floor shared by every gated
  bench (see :func:`min_speedup`)
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Dict, Sequence

from repro.experiments.runner import format_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Node-count multiplier applied to every dataset stand-in.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))

#: Monte-Carlo samples per welfare estimate.
BENCH_SAMPLES = int(os.environ.get("REPRO_BENCH_SAMPLES", "60"))

#: Environment variable relaxing every speedup gate at once (CI runners
#: share cores, making wall-clock ratios noisy; locally the per-bench
#: defaults apply).
MIN_SPEEDUP_ENV = "REPRO_BENCH_MIN_SPEEDUP"


def min_speedup(default: float) -> float:
    """The gate floor a bench asserts: local default, CI override.

    Every gated bench used to read ``$REPRO_BENCH_MIN_SPEEDUP`` with its
    own copy of this three-line dance; this is the one shared copy.
    """
    return float(os.environ.get(MIN_SPEEDUP_ENV, str(default)))


def record(name: str, rows: Sequence[Dict[str, object]], header: str = "") -> str:
    """Print and persist one regenerated table/figure."""
    text = format_table(rows)
    banner = f"== {name} =="
    if header:
        banner += f"  ({header})"
    output = f"\n{banner}\n{text}\n"
    print(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output)
    return output


def run_once(benchmark, func: Callable[[], object]) -> object:
    """Execute ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
