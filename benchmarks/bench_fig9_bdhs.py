"""Fig. 9(a–c) — propagation vs externality: bundleGRD against BDHS.

For each network panel, compute the BDHS benchmark welfares (step and
concave) and sweep bundleGRD's per-item budget as a fraction of n.  Paper
shapes asserted: bundleGRD reaches the BDHS-Step benchmark at a strict
fraction of the full budget, and needs a *smaller* fraction on the dense
Orkut stand-in than on the sparse Douban-Book one.
"""

import pytest

from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments.fig9_bdhs import result_rows, run_fig9_bdhs

FRACTIONS = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)
PANELS = ("orkut", "douban-book", "douban-movie")

_match_fraction = {}


@pytest.mark.parametrize("network", PANELS)
def test_fig9_bdhs_panel(benchmark, network):
    def run():
        return run_fig9_bdhs(
            network,
            scale=BENCH_SCALE,
            fractions=FRACTIONS,
            num_samples=40,
            num_step_worlds=40,
        )

    result = run_once(benchmark, run)
    record(
        f"fig9_bdhs_{network}",
        result_rows(result),
        header=f"scale={BENCH_SCALE}",
    )

    frac = result.fraction_to_match(result.benchmark_step)
    _match_fraction[network] = frac
    # bundleGRD reaches the step benchmark within the sweep.
    assert frac is not None, "bundleGRD never reached the BDHS-Step welfare"
    assert frac <= 1.0
    if network == "orkut":
        # dense graph: well under half the budget (paper: < 35%)
        assert frac <= 0.5
    if len(_match_fraction) == len(PANELS):
        # density ordering: Orkut needs no more budget than Douban-Book.
        assert _match_fraction["orkut"] <= _match_fraction["douban-book"]
