"""Ablation — bundleGRD under the linear-threshold triggering model.

§5: "our results and techniques carry over unchanged to any triggering
propagation model".  We run bundleGRD and item-disj end to end with LT
trigger sampling (seed selection *and* welfare evaluation both under LT) and
assert the headline ordering survives the model swap.
"""

import numpy as np

from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.baselines.item_disjoint import item_disjoint
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.configs import two_item_config
from repro.graph import datasets

BUDGETS = [30, 30]


def test_ablation_bundlegrd_under_lt(benchmark):
    graph = datasets.load("douban-movie", scale=BENCH_SCALE)
    model = two_item_config(1).model

    def run():
        results = {}
        for triggering in ("ic", "lt"):
            bg = bundle_grd(
                graph, BUDGETS, rng=np.random.default_rng(0),
                triggering=triggering,
            )
            idj = item_disjoint(
                graph, BUDGETS, rng=np.random.default_rng(0)
            )
            results[triggering] = {
                "bundleGRD": estimate_welfare(
                    graph, model, bg.allocation, BENCH_SAMPLES,
                    np.random.default_rng(1), triggering=triggering,
                ).mean,
                "item-disj": estimate_welfare(
                    graph, model, idj.allocation, BENCH_SAMPLES,
                    np.random.default_rng(1), triggering=triggering,
                ).mean,
            }
        return results

    results = run_once(benchmark, run)
    rows = [
        {
            "triggering": trig,
            "bundleGRD_welfare": round(vals["bundleGRD"], 1),
            "item_disj_welfare": round(vals["item-disj"], 1),
        }
        for trig, vals in results.items()
    ]
    record(
        "ablation_triggering_lt", rows,
        header=f"douban-movie scale={BENCH_SCALE}, config 1",
    )

    # The bundling advantage carries over to LT.
    for trig in ("ic", "lt"):
        assert results[trig]["bundleGRD"] > results[trig]["item-disj"]
    assert results["lt"]["bundleGRD"] > 0.0
