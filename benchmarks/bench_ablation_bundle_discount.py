"""Ablation — additive vs submodular (bundle-discounted) prices.

§5: "If we use submodular prices, that would further favor item bundling.
In this case, utility remains supermodular and our results remain intact."
We run the same bundleGRD allocation under additive prices and under a
volume discount, asserting the discount strictly raises welfare — bundling
becomes even more attractive — while the algorithm itself is untouched
(bundleGRD never reads prices).
"""

import numpy as np

from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.graph import datasets
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice, DiscountedBundlePrice
from repro.utility.valuation import TableValuation

BUDGETS = [30, 30]
DISCOUNTS = (0.0, 0.5, 1.0, 1.5)


def test_ablation_bundle_discount(benchmark):
    graph = datasets.load("douban-movie", scale=BENCH_SCALE)
    valuation = TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0})

    def run():
        allocation = bundle_grd(
            graph, BUDGETS, rng=np.random.default_rng(0)
        ).allocation
        welfare_by_discount = {}
        for discount in DISCOUNTS:
            price = (
                AdditivePrice([3.0, 4.0])
                if discount == 0.0
                else DiscountedBundlePrice([3.0, 4.0], discount)
            )
            model = UtilityModel(valuation, price, GaussianNoise([1.0, 1.0]))
            welfare_by_discount[discount] = estimate_welfare(
                graph, model, allocation, BENCH_SAMPLES,
                np.random.default_rng(1),
            ).mean
        return welfare_by_discount

    welfare = run_once(benchmark, run)
    rows = [
        {"bundle_discount": d, "welfare": round(w, 1)}
        for d, w in welfare.items()
    ]
    record(
        "ablation_bundle_discount", rows,
        header=f"douban-movie scale={BENCH_SCALE}, config-1 valuation",
    )

    discounts = sorted(welfare)
    # Welfare increases monotonically with the bundle discount.
    for lo, hi in zip(discounts, discounts[1:]):
        assert welfare[hi] >= welfare[lo]
    assert welfare[discounts[-1]] > welfare[0.0]
