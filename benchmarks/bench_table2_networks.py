"""Table 2 — statistics of the five network stand-ins.

Regenerates the paper's Table 2 for the synthetic substitutes, printing both
our measured statistics and the original paper values side by side.
"""


from _bench_utils import BENCH_SCALE, record, run_once
from repro.graph import datasets


def test_table2_network_statistics(benchmark):
    def run():
        return datasets.table2_rows(scale=BENCH_SCALE)

    rows = run_once(benchmark, run)
    record("table2_networks", list(rows), header=f"scale={BENCH_SCALE}")

    # Shape assertions: five networks, density ordering preserved.
    assert len(rows) == 5
    by_name = {r["network"]: r for r in rows}
    assert by_name["orkut"]["avg_degree"] > by_name["twitter"]["avg_degree"]
    assert by_name["twitter"]["avg_degree"] > by_name["douban-book"]["avg_degree"]
    assert by_name["flixster"]["type"] == "undirected"
    assert by_name["douban-movie"]["type"] == "directed"
