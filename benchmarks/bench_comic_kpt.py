"""Batched KPT estimation + GAP-aware Com-IC sampling benchmark.

Compares the two RR backends on the phases this PR vectorized:

* **kpt** — TIM's ``KptEstimation`` (width-based geometric rounds) on a
  near-critical fixed-probability graph, the regime where per-set Python
  overhead dominates the sequential path.  The batched path generates each
  round ``c_i`` as one ``batch_generate_rr_sets`` call and computes all
  widths with one vectorized ``rr_set_widths`` pass.
* **comic** — RR-SIM+ end to end (IMM for the fixed item, GAP-aware KPT
  estimation, θ-phase GAP sampling, greedy max coverage), sequential vs
  batched, on a 1k-node WC graph.

Writes ``BENCH_comic_kpt.json`` at the repository root (plus the usual
``benchmarks/results`` artifact) to extend the performance trajectory
started by ``BENCH_rrset_engine.json``.

The acceptance gate asserted here: both rows at least ``MIN_SPEEDUP``
(default 3x; the acceptance criterion) faster batched than sequential.
CI relaxes the bound via ``REPRO_BENCH_MIN_SPEEDUP`` because wall-clock
ratios on shared runners are noisy.
"""

import json
import time
from pathlib import Path

import numpy as np

from _bench_utils import min_speedup, record, run_once
from repro.baselines.rr_sim import rr_sim_plus
from repro.engine import EngineContext
from repro.diffusion.comic import ComICModel
from repro.graph.generators import erdos_renyi, random_wc_graph
from repro.graph.weighting import fixed_probability
from repro.rrset.tim import _kpt_estimation

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_comic_kpt.json"

#: Minimum batched-over-sequential speedup asserted on every row.
MIN_SPEEDUP = min_speedup(3.0)

#: KPT estimation repetitions (small absolute timings; summed for stability).
KPT_REPS = 3

GAP = ComICModel(0.5, 0.84, 0.5, 0.84)


def _time_kpt(graph, k, backend):
    elapsed = 0.0
    used_total = 0
    for rep in range(KPT_REPS):
        rng = np.random.default_rng(100 + rep)
        t0 = time.perf_counter()
        _, used = _kpt_estimation(graph, k, 1.0, rng, backend=backend)
        elapsed += time.perf_counter() - t0
        used_total += used
    return elapsed, used_total


def _time_comic(graph, budgets, backend):
    rng = np.random.default_rng(7)
    t0 = time.perf_counter()
    result = rr_sim_plus(
        graph, GAP, budgets, num_forward_worlds=5,
        ctx=EngineContext.create(backend=backend, rng=rng),
    )
    return time.perf_counter() - t0, result.num_rr_sets


def _run_comparison():
    rows = []

    # Row 1: TIM KPT estimation, width-based geometric rounds.
    arcs = erdos_renyi(10_000, 10, seed=5)
    kpt_graph = fixed_probability(10_000, arcs, 0.09)
    seq_s, seq_sets = _time_kpt(kpt_graph, 50, "sequential")
    bat_s, bat_sets = _time_kpt(kpt_graph, 50, "batched")
    rows.append(
        {
            "phase": "kpt",
            "graph": "er_10k_p0.09",
            "nodes": kpt_graph.num_nodes,
            "rr_sets_seq": seq_sets,
            "rr_sets_bat": bat_sets,
            "seq_s": round(seq_s, 3),
            "bat_s": round(bat_s, 3),
            "speedup": round(seq_s / bat_s, 2),
        }
    )

    # Row 2 (gate): RR-SIM+ end to end — IMM + GAP-aware KPT + θ sampling
    # + greedy max coverage.
    comic_graph = random_wc_graph(1_000, avg_degree=6, seed=23)
    seq_s, seq_sets = _time_comic(comic_graph, (10, 10), "sequential")
    bat_s, bat_sets = _time_comic(comic_graph, (10, 10), "batched")
    rows.append(
        {
            "phase": "comic",
            "graph": "wc_1k",
            "nodes": comic_graph.num_nodes,
            "rr_sets_seq": seq_sets,
            "rr_sets_bat": bat_sets,
            "seq_s": round(seq_s, 3),
            "bat_s": round(bat_s, 3),
            "speedup": round(seq_s / bat_s, 2),
        }
    )
    return rows


def test_comic_kpt_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record("comic_kpt", rows, header="sequential vs batched KPT + Com-IC GAP")
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: batched >= MIN_SPEEDUP on both phases.
        assert row["speedup"] >= MIN_SPEEDUP, row
        # Both backends draw comparable sample counts (same θ discipline).
        assert 0.5 < row["rr_sets_bat"] / row["rr_sets_seq"] < 2.0, row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
