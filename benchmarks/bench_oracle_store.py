"""Persistent oracle store benchmark: cold build vs warm load vs sharded.

Measures the serving economics the ``repro.store`` subsystem exists for
(the §2.1 influence-oracle split: preprocess once, answer forever):

* **cold_build** — full preprocessing from scratch: PRIMA with the whole
  budget vector plus the θ-sized estimation collection, then persisting
  the sketch (what every process restart used to pay).
* **warm_load** — ``OracleService.open`` on the saved file (memory-mapped)
  followed by the full query mix: every seed prefix, a spread curve and a
  bundleGRD allocation.  This is the steady-state serving cost.
* **sharded_build** — the same preprocessing with the estimation
  collection fanned over a process pool
  (:func:`repro.store.build_sharded`), the offline-rebuild path for
  multi-core boxes.  Shard/process counts follow ``os.cpu_count()``; on a
  single-core runner the shards execute in-process (so the row then
  measures merge overhead, not parallel speedup — reported, not gated).

Writes ``BENCH_oracle_store.json`` at the repository root (plus the usual
``benchmarks/results`` artifact).  Gates:

* warm-load serving at least ``MIN_SPEEDUP`` (default 10x, the acceptance
  criterion; CI relaxes via ``REPRO_BENCH_MIN_SPEEDUP``) faster than a
  cold rebuild;
* warm answers *identical* to the cold oracle's (golden equality, not a
  statistical band — the store serves the same arrays).
"""

import json
import os
import time
from pathlib import Path

from _bench_utils import min_speedup, record, run_once
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.store import OracleService, build_sharded, build_store

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_oracle_store.json"

#: Minimum warm-load-over-cold-build speedup asserted (acceptance: >= 10).
MIN_SPEEDUP = min_speedup(10.0)

MAX_BUDGET = 20
RR_SETS = 60_000
_CORES = os.cpu_count() or 1
NUM_SHARDS = max(2, min(8, _CORES))
NUM_PROCESSES = _CORES if _CORES > 1 else 0  # 0 = in-process fallback


def _query_mix(service):
    """The serving workload timed on the warm path."""
    prefixes = [service.seeds(b) for b in range(1, service.max_budget + 1)]
    curve = service.spread_curve((1, 5, 10, MAX_BUDGET))
    allocation = service.allocate([MAX_BUDGET, MAX_BUDGET // 2])
    return prefixes, curve, allocation


def _run_comparison():
    graph = random_wc_graph(6_000, avg_degree=7, seed=37)
    store_path = REPO_ROOT / "benchmarks" / "results" / "bench_oracle.sketch"
    store_path.parent.mkdir(exist_ok=True)

    t0 = time.perf_counter()
    store = build_store(
        graph, MAX_BUDGET, estimation_rr_sets=RR_SETS,
        ctx=EngineContext.create(seed=5),
    )
    store.save(store_path)
    cold_service = OracleService(store, graph)
    cold_answers = _query_mix(cold_service)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_service = OracleService.open(store_path, graph)
    warm_answers = _query_mix(warm_service)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = build_sharded(
        graph, MAX_BUDGET, num_shards=NUM_SHARDS, processes=NUM_PROCESSES,
        estimation_rr_sets=RR_SETS, ctx=EngineContext.create(seed=5),
    )
    sharded_s = time.perf_counter() - t0

    golden = (
        cold_answers[0] == warm_answers[0]
        and cold_answers[1] == warm_answers[1]
        and cold_answers[2].allocation == warm_answers[2].allocation
    )
    store_path.unlink(missing_ok=True)
    return [
        {
            "graph": "wc_6k",
            "nodes": graph.num_nodes,
            "rr_sets": store.num_sets,
            "max_budget": MAX_BUDGET,
            "cold_build_s": round(cold_s, 3),
            "warm_load_s": round(warm_s, 3),
            "sharded_build_s": round(sharded_s, 3),
            "shards": NUM_SHARDS,
            "processes": NUM_PROCESSES,
            "warm_speedup": round(cold_s / warm_s, 2),
            "sharded_speedup": round(cold_s / sharded_s, 2),
            "golden_match": bool(golden),
            "sharded_rr_sets": sharded.num_sets,
        }
    ]


def test_oracle_store_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record(
        "oracle_store", rows,
        header="cold build vs warm mmap load vs sharded parallel build",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: warm serving beats a full rebuild >= MIN_SPEEDUP.
        assert row["warm_speedup"] >= MIN_SPEEDUP, row
        # Golden gate: the warm path serves the cold oracle's exact answers.
        assert row["golden_match"], row
        # The sharded build must deliver the full collection.
        assert row["sharded_rr_sets"] == row["rr_sets"], row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
