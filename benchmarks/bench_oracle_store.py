"""Persistent oracle store benchmark: cold build vs warm load vs sharded.

Measures the serving economics the ``repro.store`` subsystem exists for
(the §2.1 influence-oracle split: preprocess once, answer forever):

* **cold_build** — full preprocessing from scratch: PRIMA with the whole
  budget vector plus the θ-sized estimation collection, then persisting
  the sketch (what every process restart used to pay).
* **warm_load** — ``OracleService.open`` on the saved file (memory-mapped)
  followed by the full query mix: every seed prefix, a spread curve and a
  bundleGRD allocation.  This is the steady-state serving cost.
* **sharded_build** — the same preprocessing with the estimation
  collection fanned over the persistent shared-memory pool
  (:func:`repro.store.build_sharded` via :mod:`repro.parallel`).  The
  build always runs with ``processes >= 2`` and **fails loudly if the
  pool path was not exercised** (the pool's ``tasks_dispatched`` counter
  must grow by exactly the shard count — a silent in-process fallback
  would otherwise masquerade as a parallel measurement).  The row records
  ``processes`` and ``effective_cores``.

Writes ``BENCH_oracle_store.json`` at the repository root (plus the usual
``benchmarks/results`` artifact).  Gates:

* warm-load serving at least ``MIN_SPEEDUP`` (default 10x, the acceptance
  criterion; CI relaxes via ``REPRO_BENCH_MIN_SPEEDUP``) faster than a
  cold rebuild;
* warm answers *identical* to the cold oracle's (golden equality, not a
  statistical band — the store serves the same arrays);
* on runners with >= 2 effective cores, the sharded build at least
  ``SHARDED_MIN_SPEEDUP`` (default 1.5x, relaxed by the same env var)
  faster than the cold build.  A single-core
  runner still exercises the pool (the workers timeshare one core) but
  cannot honestly gate wall-clock, so the speedup is reported ungated.
"""

import json
import os
import time
from pathlib import Path

from _bench_utils import min_speedup, record, run_once
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.parallel import get_pool, shutdown_pool
from repro.store import OracleService, build_sharded, build_store

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_oracle_store.json"

#: Minimum warm-load-over-cold-build speedup asserted (acceptance: >= 10).
MIN_SPEEDUP = min_speedup(10.0)

#: Minimum sharded-over-cold speedup, gated only when >= 2 cores exist.
SHARDED_MIN_SPEEDUP = min_speedup(1.5)

MAX_BUDGET = 20
RR_SETS = 60_000
try:
    _CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    _CORES = os.cpu_count() or 1
NUM_SHARDS = max(4, min(8, _CORES))
#: Always >= 2: the pool path itself is part of what this bench verifies.
NUM_PROCESSES = max(2, min(8, _CORES))


def _query_mix(service):
    """The serving workload timed on the warm path."""
    prefixes = [service.seeds(b) for b in range(1, service.max_budget + 1)]
    curve = service.spread_curve((1, 5, 10, MAX_BUDGET))
    allocation = service.allocate([MAX_BUDGET, MAX_BUDGET // 2])
    return prefixes, curve, allocation


def _run_comparison():
    graph = random_wc_graph(6_000, avg_degree=7, seed=37)
    store_path = REPO_ROOT / "benchmarks" / "results" / "bench_oracle.sketch"
    store_path.parent.mkdir(exist_ok=True)

    t0 = time.perf_counter()
    store = build_store(
        graph, MAX_BUDGET, estimation_rr_sets=RR_SETS,
        ctx=EngineContext.create(seed=5),
    )
    store.save(store_path)
    cold_service = OracleService(store, graph)
    cold_answers = _query_mix(cold_service)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_service = OracleService.open(store_path, graph)
    warm_answers = _query_mix(warm_service)
    warm_s = time.perf_counter() - t0

    # Fresh pool so tasks_dispatched counts exactly this build's shards:
    # a zero delta means the measurement silently fell back in-process.
    shutdown_pool()
    pool = get_pool(NUM_PROCESSES)
    before = pool.tasks_dispatched
    t0 = time.perf_counter()
    sharded = build_sharded(
        graph, MAX_BUDGET, num_shards=NUM_SHARDS, processes=NUM_PROCESSES,
        estimation_rr_sets=RR_SETS, ctx=EngineContext.create(seed=5),
    )
    sharded_s = time.perf_counter() - t0
    pool_tasks = pool.tasks_dispatched - before
    if pool_tasks != NUM_SHARDS:
        raise AssertionError(
            f"sharded build was supposed to fan {NUM_SHARDS} shards over "
            f"{NUM_PROCESSES} pool workers but only {pool_tasks} tasks went "
            "through the pool — the in-process fallback ran instead, so "
            "this row would not measure the parallel path"
        )
    shutdown_pool()

    golden = (
        cold_answers[0] == warm_answers[0]
        and cold_answers[1] == warm_answers[1]
        and cold_answers[2].allocation == warm_answers[2].allocation
    )
    store_path.unlink(missing_ok=True)
    return [
        {
            "graph": "wc_6k",
            "nodes": graph.num_nodes,
            "rr_sets": store.num_sets,
            "max_budget": MAX_BUDGET,
            "cold_build_s": round(cold_s, 3),
            "warm_load_s": round(warm_s, 3),
            "sharded_build_s": round(sharded_s, 3),
            "shards": NUM_SHARDS,
            "processes": NUM_PROCESSES,
            "effective_cores": _CORES,
            "pool_tasks": pool_tasks,
            "warm_speedup": round(cold_s / warm_s, 2),
            "sharded_speedup": round(cold_s / sharded_s, 2),
            "golden_match": bool(golden),
            "sharded_rr_sets": sharded.num_sets,
        }
    ]


def test_oracle_store_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record(
        "oracle_store", rows,
        header="cold build vs warm mmap load vs sharded parallel build",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: warm serving beats a full rebuild >= MIN_SPEEDUP.
        assert row["warm_speedup"] >= MIN_SPEEDUP, row
        # Golden gate: the warm path serves the cold oracle's exact answers.
        assert row["golden_match"], row
        # The sharded build must deliver the full collection.
        assert row["sharded_rr_sets"] == row["rr_sets"], row
        # The pool path must have actually run (fail-loud, not silent).
        assert row["pool_tasks"] == row["shards"], row
        assert row["processes"] >= 2, row
        # Wall-clock gate only where the hardware can honestly deliver it.
        if row["effective_cores"] >= 2:
            assert row["sharded_speedup"] >= SHARDED_MIN_SPEEDUP, row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
