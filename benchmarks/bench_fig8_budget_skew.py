"""Fig. 8(d) — effect of splitting a fixed total budget across items.

bundleGRD under uniform / large-skew / moderate-skew splits of a 500-seed
total budget (real Param).  Paper shape asserted: uniform gives the highest
welfare, large skew the lowest, moderate in between; running time follows
the same ordering (large skew selects the most seeds).
"""


from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.experiments.fig8_real import run_budget_skew


def test_fig8d_budget_skew(benchmark):
    def run():
        return run_budget_skew(
            network="twitter",
            scale=BENCH_SCALE,
            total_budget=500,
            num_samples=BENCH_SAMPLES,
        )

    runs = run_once(benchmark, run)
    rows = [
        {
            "distribution": r.distribution,
            "budgets": "/".join(str(b) for b in r.budgets),
            "welfare": round(r.welfare, 1),
            "seconds": round(r.seconds, 3),
        }
        for r in runs
    ]
    record("fig8d_budget_skew", rows, header=f"twitter scale={BENCH_SCALE}")

    by_name = {r.distribution: r for r in runs}
    # Welfare ordering: uniform >= moderate >= large (with 10% MC slack).
    assert by_name["uniform"].welfare >= 0.9 * by_name["moderate_skew"].welfare
    assert by_name["moderate_skew"].welfare >= 0.9 * by_name["large_skew"].welfare
    assert by_name["uniform"].welfare > by_name["large_skew"].welfare
