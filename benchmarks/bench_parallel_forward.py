"""Parallel forward-simulation benchmark: sharded Monte-Carlo estimates.

Times the ``parallel`` backend's forward estimators — welfare
(:func:`repro.diffusion.welfare.estimate_welfare`) and Com-IC spread
(:func:`repro.diffusion.comic.estimate_comic_spread`) — with the worlds
fanned over the shared-memory worker pool, against the same estimates run
through the identical shard structure in-process (``processes=0``).
Comparing pooled against in-process *of the same backend* isolates
exactly the pool's contribution: both sides run the same batched kernels
on the same shard streams, so the ratio is pure dispatch economics.

Every pooled measurement **fails loudly if the pool path was not
exercised** (the ``tasks_dispatched`` counter must grow by the shard
count).  Rows record ``processes`` and ``effective_cores``.

Writes ``BENCH_parallel_forward.json`` at the repository root.  Gates:

* pooled and in-process estimates are **byte-identical** (the
  determinism contract: worker count never touches a number);
* the parallel estimate is statistically equivalent to the plain batched
  backend's (|z| < 5 against the combined stderr — different streams,
  same distribution);
* on runners with >= 2 effective cores, pooled wall-clock beats
  in-process by ``MIN_SPEEDUP`` (default 1.3x, relaxed via
  ``REPRO_BENCH_MIN_SPEEDUP``).  A single-core runner still verifies
  pool dispatch and both equivalence gates, but reports the (there
  meaningless) speedup ungated.
"""

import json
import os
import time
from pathlib import Path

from _bench_utils import BENCH_SAMPLES, min_speedup, record, run_once
from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.diffusion.welfare import estimate_welfare
from repro.engine import EngineContext
from repro.experiments.configs import two_item_config
from repro.graph.generators import random_wc_graph
from repro.parallel import FORWARD_SHARDS, get_pool, shutdown_pool

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel_forward.json"

#: Minimum pooled-over-in-process speedup, gated only on >= 2 cores.
MIN_SPEEDUP = min_speedup(1.3)

NUM_SAMPLES = max(200, BENCH_SAMPLES)
try:
    _CORES = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux fallback
    _CORES = os.cpu_count() or 1
NUM_PROCESSES = max(2, min(8, _CORES))


def _timed_pooled(fn, shards):
    """Run ``fn`` with the pool at NUM_PROCESSES, assert dispatch, time it."""
    shutdown_pool()
    pool = get_pool(NUM_PROCESSES)
    fn()  # warm-up: spawn workers + publish the graph outside the timing
    before = pool.tasks_dispatched
    t0 = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - t0
    dispatched = pool.tasks_dispatched - before
    if dispatched != shards:
        raise AssertionError(
            f"expected {shards} shard tasks through the pool, saw "
            f"{dispatched} — the in-process fallback ran, this is not a "
            "parallel measurement"
        )
    shutdown_pool()
    return value, seconds


def _timed_in_process(fn):
    shutdown_pool()
    get_pool(0)
    t0 = time.perf_counter()
    value = fn()
    seconds = time.perf_counter() - t0
    shutdown_pool()
    return value, seconds


def _welfare_row(graph, model):
    allocation = [(v, v % 2) for v in range(10)]
    shards = min(NUM_SAMPLES, FORWARD_SHARDS)

    def run_parallel():
        return estimate_welfare(
            graph, model, allocation, num_samples=NUM_SAMPLES,
            ctx=EngineContext.create(backend="parallel", seed=7),
        )

    pooled, pooled_s = _timed_pooled(run_parallel, shards)
    serial, serial_s = _timed_in_process(run_parallel)
    batched = estimate_welfare(
        graph, model, allocation, num_samples=NUM_SAMPLES,
        ctx=EngineContext.create(backend="batched", seed=7),
    )
    sigma = max((pooled.stderr**2 + batched.stderr**2) ** 0.5, 1e-12)
    return {
        "estimator": "welfare",
        "nodes": graph.num_nodes,
        "samples": NUM_SAMPLES,
        "shards": shards,
        "processes": NUM_PROCESSES,
        "effective_cores": _CORES,
        "pooled_s": round(pooled_s, 3),
        "in_process_s": round(serial_s, 3),
        "speedup": round(serial_s / pooled_s, 2),
        "identical": bool(pooled.mean == serial.mean),
        "z_vs_batched": round(abs(pooled.mean - batched.mean) / sigma, 2),
    }


def _spread_row(graph):
    model = ComICModel(0.1, 0.4, 0.1, 0.4)
    seeds_a, seeds_b = list(range(5)), list(range(5, 10))
    shards = min(NUM_SAMPLES, FORWARD_SHARDS)

    def run_parallel():
        return estimate_comic_spread(
            graph, model, seeds_a, seeds_b, item=0, num_samples=NUM_SAMPLES,
            ctx=EngineContext.create(backend="parallel", seed=7),
        )

    pooled, pooled_s = _timed_pooled(run_parallel, shards)
    serial, serial_s = _timed_in_process(run_parallel)
    batched = estimate_comic_spread(
        graph, model, seeds_a, seeds_b, item=0, num_samples=NUM_SAMPLES,
        ctx=EngineContext.create(backend="batched", seed=7),
    )
    # Spread returns a bare mean; bound the per-world sd by n_nodes / 2.
    sigma = graph.num_nodes * 0.5 / (NUM_SAMPLES**0.5)
    return {
        "estimator": "comic_spread",
        "nodes": graph.num_nodes,
        "samples": NUM_SAMPLES,
        "shards": shards,
        "processes": NUM_PROCESSES,
        "effective_cores": _CORES,
        "pooled_s": round(pooled_s, 3),
        "in_process_s": round(serial_s, 3),
        "speedup": round(serial_s / pooled_s, 2),
        "identical": bool(pooled == serial),
        "z_vs_batched": round(abs(pooled - batched) / sigma, 2),
    }


def _run_comparison():
    graph = random_wc_graph(4_000, avg_degree=7, seed=41)
    model = two_item_config(1).model
    return [_welfare_row(graph, model), _spread_row(graph)]


def test_parallel_forward_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record(
        "parallel_forward", rows,
        header="pooled vs in-process forward Monte-Carlo (parallel backend)",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Determinism gate: the pool never changes a number.
        assert row["identical"], row
        # Statistical-equivalence gate vs the plain batched backend.
        assert row["z_vs_batched"] < 5.0, row
        assert row["processes"] >= 2, row
        # Wall-clock gate only where the hardware can honestly deliver it.
        if row["effective_cores"] >= 2:
            assert row["speedup"] >= MIN_SPEEDUP, row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
