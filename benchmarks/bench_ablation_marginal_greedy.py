"""Ablation — bundleGRD vs naive marginal-greedy welfare maximization.

The obvious alternative to bundleGRD greedily adds the (node, item) pair
with the best Monte-Carlo-estimated marginal welfare (CELF-accelerated).
Because expected welfare is neither submodular nor supermodular, that
approach carries no guarantee *and* pays a full welfare estimation per
candidate pair.  This ablation quantifies the trade on a small instance:
bundleGRD must match (or beat) the naive greedy's welfare at a tiny fraction
of its cost — the practical content of the paper's "guarantee without value
oracles" claim.
"""

import time

import numpy as np

from _bench_utils import record, run_once
from repro.baselines.marginal_greedy import marginal_greedy
from repro.core.bundlegrd import bundle_grd
from repro.diffusion.welfare import estimate_welfare
from repro.experiments.configs import two_item_config
from repro.graph.generators import random_wc_graph

BUDGETS = [8, 8]


def test_ablation_marginal_greedy(benchmark):
    graph = random_wc_graph(800, 6, seed=13)
    model = two_item_config(1).model
    shortlist = list(range(0, 800, 4))  # generous 200-node candidate pool

    def run():
        t0 = time.perf_counter()
        mg = marginal_greedy(
            graph, model, BUDGETS, candidate_nodes=shortlist, num_samples=40
        )
        mg_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        bg = bundle_grd(graph, BUDGETS, rng=np.random.default_rng(0))
        bg_seconds = time.perf_counter() - t0
        def eval_rng():
            return np.random.default_rng(9)
        return {
            "marginal-greedy": (
                estimate_welfare(
                    graph, model, mg.allocation, 300, eval_rng()
                ).mean,
                mg_seconds,
                mg.num_evaluations,
            ),
            "bundleGRD": (
                estimate_welfare(
                    graph, model, bg.allocation, 300, eval_rng()
                ).mean,
                bg_seconds,
                0,
            ),
        }

    results = run_once(benchmark, run)
    rows = [
        {
            "algorithm": name,
            "welfare": round(welfare, 1),
            "seconds": round(seconds, 2),
            "welfare_evaluations": evals,
        }
        for name, (welfare, seconds, evals) in results.items()
    ]
    record("ablation_marginal_greedy", rows, header="800-node graph, config 1")

    mg_welfare, mg_seconds, _ = results["marginal-greedy"]
    bg_welfare, bg_seconds, _ = results["bundleGRD"]
    # bundleGRD achieves comparable (here: better) welfare...
    assert bg_welfare >= 0.75 * mg_welfare
    # ...at a fraction of the cost.
    assert bg_seconds < 0.5 * mg_seconds
