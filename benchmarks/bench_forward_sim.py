"""Batched forward-simulation engine benchmark.

Compares the two forward backends on the Monte-Carlo phases PR 3
vectorized (the forward twin of ``bench_rrset_engine.py`` /
``bench_comic_kpt.py``):

* **comic** (gate) — forward Com-IC world simulation: one
  ``estimate_comic_spread`` call on a 2k-node WC graph, sequential
  (one interpreted ``simulate_comic`` per world, the historical path of
  ``_forward_adopter_worlds``) vs batched
  (``batch_simulate_comic``, all worlds as flat frontier arrays).
* **welfare** — UIC welfare estimation (``estimate_welfare``): per-world
  noise tables + adoption decision tables + flat frontier propagation vs
  the per-world Python simulator.
* **ic** — plain IC spread estimation (``estimate_spread`` vs
  ``batch_simulate_ic``), the floor of what frontier batching buys.

Writes ``BENCH_forward_sim.json`` at the repository root (plus the usual
``benchmarks/results`` artifact), extending the perf trajectory of
``BENCH_rrset_engine.json`` and ``BENCH_comic_kpt.json``.

Gates asserted on every row: batched at least ``MIN_SPEEDUP`` (default 3x,
the acceptance criterion; CI relaxes via ``REPRO_BENCH_MIN_SPEEDUP``
because shared-runner wall clocks are noisy) *and* batched means
statistically equivalent to sequential (within 6 sigma of the Monte-Carlo
noise).
"""

import json
import math
import time
from pathlib import Path

import numpy as np

from _bench_utils import min_speedup, record, run_once
from repro.diffusion.batch_forward import batch_simulate_ic
from repro.diffusion.comic import ComICModel, estimate_comic_spread
from repro.diffusion.ic import estimate_spread
from repro.diffusion.welfare import estimate_welfare
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.utility.model import UtilityModel
from repro.utility.noise import GaussianNoise
from repro.utility.price import AdditivePrice
from repro.utility.valuation import TableValuation

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_forward_sim.json"

#: Minimum batched-over-sequential speedup asserted on every row.
MIN_SPEEDUP = min_speedup(3.0)

#: Monte-Carlo worlds per estimate.
NUM_WORLDS = 400

GAP = ComICModel(0.5, 0.84, 0.5, 0.84)

CONFIG1_MODEL = UtilityModel(
    TableValuation(2, {0b01: 3.0, 0b10: 4.0, 0b11: 8.0}),
    AdditivePrice([3.0, 4.0]),
    GaussianNoise([1.0, 1.0]),
)


def _row(phase, graph_name, nodes, seq_s, bat_s, seq_mean, bat_mean, sigma):
    return {
        "phase": phase,
        "graph": graph_name,
        "nodes": nodes,
        "worlds": NUM_WORLDS,
        "seq_s": round(seq_s, 3),
        "bat_s": round(bat_s, 3),
        "speedup": round(seq_s / bat_s, 2),
        "seq_mean": round(seq_mean, 3),
        "bat_mean": round(bat_mean, 3),
        "abs_z": round(abs(seq_mean - bat_mean) / max(sigma, 1e-9), 2),
    }


def _run_comparison():
    rows = []
    seeds_a = list(range(0, 40, 4))
    seeds_b = list(range(1, 21, 4))

    # Row 1 (gate): forward Com-IC world simulation.
    comic_graph = random_wc_graph(2_000, avg_degree=6, seed=23)
    t0 = time.perf_counter()
    seq_mean = estimate_comic_spread(
        comic_graph, GAP, seeds_a, seeds_b, item=0, num_samples=NUM_WORLDS,
        ctx=EngineContext.create(
            backend="sequential", rng=np.random.default_rng(1)
        ),
    )
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    bat_mean = estimate_comic_spread(
        comic_graph, GAP, seeds_a, seeds_b, item=0, num_samples=NUM_WORLDS,
        ctx=EngineContext.create(
            backend="batched", rng=np.random.default_rng(2)
        ),
    )
    bat_s = time.perf_counter() - t0
    # Per-world adopter counts have std of a few dozen nodes here; one
    # sigma of the mean difference bounds the equivalence check.
    sigma = 40.0 / math.sqrt(NUM_WORLDS)
    rows.append(
        _row(
            "comic", "wc_2k", comic_graph.num_nodes,
            seq_s, bat_s, seq_mean, bat_mean, sigma,
        )
    )

    # Row 2: UIC welfare estimation.
    uic_graph = random_wc_graph(1_500, avg_degree=6, seed=31)
    allocation = [(v, i) for v in range(25) for i in (0, 1)]
    t0 = time.perf_counter()
    seq = estimate_welfare(
        uic_graph, CONFIG1_MODEL, allocation, num_samples=NUM_WORLDS,
        ctx=EngineContext.create(
            backend="sequential", rng=np.random.default_rng(3)
        ),
    )
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    bat = estimate_welfare(
        uic_graph, CONFIG1_MODEL, allocation, num_samples=NUM_WORLDS,
        ctx=EngineContext.create(
            backend="batched", rng=np.random.default_rng(4)
        ),
    )
    bat_s = time.perf_counter() - t0
    sigma = math.hypot(seq.stderr, bat.stderr)
    rows.append(
        _row(
            "welfare", "wc_1.5k", uic_graph.num_nodes,
            seq_s, bat_s, seq.mean, bat.mean, sigma,
        )
    )

    # Row 3: plain IC spread estimation.
    ic_graph = random_wc_graph(3_000, avg_degree=8, seed=41)
    ic_seeds = list(range(0, 60, 3))
    t0 = time.perf_counter()
    seq_mean = estimate_spread(
        ic_graph, ic_seeds, NUM_WORLDS, np.random.default_rng(5)
    )
    seq_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    active = batch_simulate_ic(
        ic_graph, ic_seeds, NUM_WORLDS, np.random.default_rng(6)
    )
    per_world = active.sum(axis=1)
    bat_mean = float(per_world.mean())
    bat_s = time.perf_counter() - t0
    # Approximate the difference's sigma with the batched sample's; the
    # sequential side has the same per-world variance.
    sigma = math.sqrt(2.0) * float(per_world.std()) / math.sqrt(NUM_WORLDS)
    rows.append(
        _row(
            "ic", "wc_3k", ic_graph.num_nodes,
            seq_s, bat_s, seq_mean, bat_mean, sigma,
        )
    )
    return rows


def test_forward_sim_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record(
        "forward_sim", rows,
        header="sequential vs batched forward world simulation",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: batched >= MIN_SPEEDUP on every phase.
        assert row["speedup"] >= MIN_SPEEDUP, row
        # Statistical equivalence: means within 6 sigma of the MC noise
        # (abs_z is in units of one sigma of the mean difference).
        assert row["abs_z"] <= 6.0, row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
