"""Com-IC sketch store benchmark: warm mmap serving vs cold rebuild.

The Com-IC baselines RR-SIM+/RR-CIM are the most expensive preprocessing
in the repository (TIM-scale GAP-aware sample sizes, Fig. 5/6 of the
paper), which makes them the *best* candidates for the persistent store:
a saved format-v2 sketch answers seed and adoption-spread queries without
re-running the forward simulations, the GAP KPT phase or the θ-phase
sampling.

* **cold_build** — the full RR-SIM+ pipeline through one
  :class:`~repro.engine.EngineContext` (IMM for the fixed item, forward
  adopter worlds, GAP KPT + θ phases, greedy selection), persisted, then
  the query mix.
* **warm_load** — ``OracleService.open`` on the saved file (memory-mapped)
  followed by the same query mix.

Gates (local defaults; CI relaxes via ``$REPRO_BENCH_MIN_SPEEDUP``):

* warm load + query at least ``MIN_SPEEDUP`` (default 5x, the acceptance
  criterion) faster than the cold rebuild;
* warm answers *identical* to the cold run's (golden equality — the store
  serves the same arrays, so seeds match byte for byte and spreads are
  the same float).

Writes ``BENCH_comic_store.json`` at the repository root (plus the usual
``benchmarks/results`` artifact).
"""

import json
import time
from pathlib import Path

from _bench_utils import min_speedup, record, run_once
from repro.diffusion.comic import ComICModel
from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.store import OracleService, build_comic_store

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_comic_store.json"

#: Minimum warm-over-cold speedup asserted (acceptance: >= 5).
MIN_SPEEDUP = min_speedup(5.0)

GAP = ComICModel(0.1, 0.4, 0.1, 0.4)
BUDGET = 10
FORWARD_WORLDS = 10


def _query_mix(service):
    """The serving workload timed on both paths."""
    prefixes = [service.seeds(b) for b in range(1, service.max_budget + 1)]
    spreads = [
        service.estimate_spread(prefix)
        for prefix in (prefixes[0], prefixes[-1])
    ]
    return prefixes, spreads


def _run_comparison():
    graph = random_wc_graph(2_000, avg_degree=6, seed=47)
    store_path = REPO_ROOT / "benchmarks" / "results" / "bench_comic.sketch"
    store_path.parent.mkdir(exist_ok=True)

    t0 = time.perf_counter()
    store = build_comic_store(
        graph,
        GAP,
        BUDGET,
        num_forward_worlds=FORWARD_WORLDS,
        ctx=EngineContext.create(seed=5),
    )
    store.save(store_path)
    cold_answers = _query_mix(OracleService(store, graph))
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm_service = OracleService.open(store_path, graph)
    warm_answers = _query_mix(warm_service)
    warm_s = time.perf_counter() - t0

    golden = cold_answers[0] == warm_answers[0] and cold_answers[1] == warm_answers[1]
    store_path.unlink(missing_ok=True)
    return [
        {
            "graph": "wc_2k",
            "nodes": graph.num_nodes,
            "model": store.model,
            "rr_sets": store.num_sets,
            "world_cursor": store.world_cursor,
            "budget": BUDGET,
            "cold_build_s": round(cold_s, 3),
            "warm_load_s": round(warm_s, 3),
            "warm_speedup": round(cold_s / warm_s, 2),
            "golden_match": bool(golden),
        }
    ]


def test_comic_store_speedup(benchmark):
    rows = run_once(benchmark, _run_comparison)
    record(
        "comic_store",
        rows,
        header="Com-IC sketch store: cold RR-SIM+ rebuild vs warm mmap load",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: warm serving beats a cold rebuild >= MIN_SPEEDUP.
        assert row["warm_speedup"] >= MIN_SPEEDUP, row
        # Golden gate: the warm path serves the cold run's exact answers.
        assert row["golden_match"], row


if __name__ == "__main__":
    results = _run_comparison()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
