#!/usr/bin/env bash
# Regenerate every BENCH_*.json perf artifact in one sweep, then flatten
# them into benchmarks/results/bench_all.csv.
#
# Usage (from the repository root or from benchmarks/):
#
#     benchmarks/run_all.sh            # the seven JSON-writing benches
#     benchmarks/run_all.sh --all      # every bench_*.py (slow)
#
# Scale/gate knobs pass through the environment, same as pytest runs:
# REPRO_BENCH_SCALE, REPRO_BENCH_SAMPLES, REPRO_BENCH_MIN_SPEEDUP.
# Each bench runs to completion even if an earlier one fails; the exit
# status is the number of failed benches.

set -u

HERE="$(cd "$(dirname "$0")" && pwd)"
REPO_ROOT="$(dirname "$HERE")"
export PYTHONPATH="${REPO_ROOT}/src${PYTHONPATH:+:${PYTHONPATH}}"

# The benches that write BENCH_<name>.json at the repository root —
# keep in sync with the CI artifact list in .github/workflows/ci.yml.
JSON_BENCHES=(
    bench_rrset_engine.py
    bench_comic_kpt.py
    bench_forward_sim.py
    bench_oracle_store.py
    bench_comic_store.py
    bench_parallel_forward.py
    bench_oracle_serving.py
)

if [ "${1:-}" = "--all" ]; then
    mapfile -t BENCHES < <(cd "$HERE" && ls bench_*.py)
else
    BENCHES=("${JSON_BENCHES[@]}")
fi

failures=0
for bench in "${BENCHES[@]}"; do
    echo "== ${bench} =="
    if ! (cd "$HERE" && python -m pytest "$bench" -q); then
        echo "run_all: FAIL ${bench}"
        failures=$((failures + 1))
    fi
done

echo "== flatten to CSV =="
python "${HERE}/to_csv.py" "${HERE}/results/bench_all.csv" || failures=$((failures + 1))

if [ "$failures" -ne 0 ]; then
    echo "run_all: ${failures} bench(es) failed"
else
    echo "run_all: all benches passed"
fi
exit "$failures"
