#!/usr/bin/env python3
"""Flatten every ``BENCH_*.json`` perf artifact into one CSV.

Each artifact at the repository root is a list of row dicts with
bench-specific columns (see the bench module that writes it).  This
script unions the columns across artifacts into one flat table —
``bench`` (the artifact stem) first, then the remaining columns sorted —
so the whole performance trajectory greps and pivots as one file.

Usage::

    python benchmarks/to_csv.py [output.csv]

Without an argument the CSV goes to stdout.  Missing artifacts are
skipped with a note on stderr (benches not yet run on this machine);
an artifact whose JSON is malformed is an error.
"""

from __future__ import annotations

import csv
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_rows(root: Path) -> List[Dict[str, object]]:
    """Rows from every BENCH_*.json, each tagged with its bench stem."""
    rows: List[Dict[str, object]] = []
    for path in sorted(root.glob("BENCH_*.json")):
        bench = path.stem[len("BENCH_"):]
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, list):
            raise ValueError(f"{path.name}: expected a list of row dicts")
        for row in payload:
            if not isinstance(row, dict):
                raise ValueError(f"{path.name}: expected dict rows")
            rows.append({"bench": bench, **row})
    return rows


def write_csv(rows: List[Dict[str, object]], stream) -> None:
    columns = ["bench"] + sorted(
        {key for row in rows for key in row} - {"bench"}
    )
    writer = csv.DictWriter(stream, fieldnames=columns, restval="")
    writer.writeheader()
    writer.writerows(rows)


def main(argv: List[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    rows = load_rows(REPO_ROOT)
    if not rows:
        print(
            "to_csv: no BENCH_*.json artifacts at the repository root "
            "(run benchmarks/run_all.sh first)",
            file=sys.stderr,
        )
        return 1
    if argv:
        out_path = Path(argv[0])
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with out_path.open("w", newline="", encoding="utf-8") as stream:
            write_csv(rows, stream)
        benches = len({row["bench"] for row in rows})
        print(f"wrote {out_path} ({len(rows)} rows from {benches} benches)")
    else:
        try:
            write_csv(rows, sys.stdout)
        except BrokenPipeError:  # e.g. `to_csv.py | head`
            return 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
