"""Fig. 4 — expected social welfare of all five algorithms, configs 1–4.

One bench per panel (configuration).  Paper shapes asserted:

* bundleGRD achieves the (statistically) highest welfare of the IMM-based
  algorithms and dominates item-disj clearly at the larger budget;
* RR-SIM+/RR-CIM welfare is in bundleGRD's ballpark (their allocations
  converge to seed copying under these configurations).
"""

import pytest

from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.experiments._two_item import runs_as_rows
from repro.experiments.fig4_welfare import run_fig4, welfare_series

#: Reduced budget sweeps (paper: uniform 10..50 step 10; b2 30..110 step 20).
UNIFORM_BUDGETS = [(10, 10), (50, 50)]
NONUNIFORM_BUDGETS = [(70, 30), (70, 110)]


@pytest.mark.parametrize("config_id", [1, 2, 3, 4])
def test_fig4_panel(benchmark, config_id):
    budgets = UNIFORM_BUDGETS if config_id % 2 == 1 else NONUNIFORM_BUDGETS

    def run():
        return run_fig4(
            config_id,
            network="douban-movie",
            scale=BENCH_SCALE,
            budget_vectors=budgets,
            num_samples=BENCH_SAMPLES,
        )

    runs = run_once(benchmark, run)
    record(
        f"fig4_config{config_id}",
        runs_as_rows(runs),
        header=f"douban-movie scale={BENCH_SCALE}",
    )

    series = welfare_series(runs)
    # bundleGRD dominates item-disj at the largest budget point.
    assert series["bundleGRD"][-1] > series["item-disj"][-1]
    # and is never dramatically below the Com-IC algorithms (they converge
    # to copying seeds; MC noise and distinct seed counts allow slack).
    assert series["bundleGRD"][-1] > 0.55 * max(
        series["RR-SIM+"][-1], series["RR-CIM"][-1]
    )
    # welfare grows along the budget sweep for bundleGRD
    assert series["bundleGRD"][-1] >= series["bundleGRD"][0]
