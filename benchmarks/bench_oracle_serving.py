"""Oracle serving benchmark: request coalescing under concurrent load.

Runs ``repro serve`` in a fresh subprocess (the production CLI path) over
a store built for the occasion, then drives it with ``CLIENTS``
synchronous :class:`~repro.serving.client.ServingClient` threads — the
workload the batcher exists for: many independent callers issuing spread
queries against the same hot store.  Two server configurations are
measured with the identical client script:

* **coalesced** — the default ``--coalesce-window`` batching: concurrent
  queries merge into one vectorized ``coverage_fractions`` scatter per
  window, so a round of 8 queries costs one kernel call plus one window.
* **uncoalesced** — ``--coalesce-window 0``: every query runs the
  store's single-query ``coverage_fraction`` path (the pre-batching
  serving behavior — a python loop over the seed set's posting lists),
  serialized on the server's event loop.

Rows record p50/p99 request latency and aggregate queries/sec for both
arms.  Gates:

* coalesced throughput at least ``MIN_SPEEDUP`` (default 1.5x locally;
  CI relaxes via the shared env knob) over uncoalesced;
* golden equality — both arms return byte-identical spreads, equal to
  the local :class:`OracleService`'s answers (coalescing must never
  change a single bit of an answer);
* the server's own telemetry must show real batching (largest batch
  >= 2) and both runs must exit 0 on SIGINT with ``leaked=0``.

Writes ``BENCH_oracle_serving.json`` at the repository root.
"""

import json
import signal
import statistics
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
from _bench_utils import min_speedup, record, run_once

from repro.engine import EngineContext
from repro.graph.generators import random_wc_graph
from repro.serving import ServingClient
from repro.store import OracleService, build_store

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_oracle_serving.json"
REPO_SRC = str(REPO_ROOT / "src")

#: Minimum coalesced-over-uncoalesced throughput gate (CI relaxes).
MIN_SPEEDUP = min_speedup(1.5)

NODES = 20_000
RR_SETS = 20_000
MAX_BUDGET = 10
#: Concurrent synchronous clients (acceptance: >= 8).
CLIENTS = 8
QUERIES_PER_CLIENT = 60
#: Nodes per spread query.  Large seed sets over a wide graph put the
#: sequential path's cost where coalescing can erase it: the per-seed
#: python loop of ``coverage_fraction`` (~µs per seed regardless of
#: posting sizes), which the batched segmented gather vectorizes away.
SEEDS_PER_QUERY = 1_000
#: Distinct query shapes cycled round-robin by every client.
QUERY_POOL = 16
#: Batching window handed to --coalesce-window (milliseconds).
WINDOW_MS = 1.0


def _query_pool(num_nodes):
    rng = np.random.default_rng(9)
    return [
        sorted(
            int(v)
            for v in rng.choice(num_nodes, size=SEEDS_PER_QUERY, replace=False)
        )
        for _ in range(QUERY_POOL)
    ]


def _start_server(store_root, window_ms):
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store-root",
            str(store_root),
            "--port",
            "0",
            "--coalesce-window",
            str(window_ms),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
    )
    banner = proc.stdout.readline().strip()  # "serving N stores on h:p"
    host, port = banner.rsplit(" ", 1)[-1].split(":")
    proc.stdout.readline()  # "keys: ..." line
    return proc, host, int(port)


def _drive(host, port, pool):
    """CLIENTS threads, each issuing its share of the query schedule.

    Returns (per-request latencies, answers keyed by (client, i), wall s).
    """
    barrier = threading.Barrier(CLIENTS)
    latencies = [[] for _ in range(CLIENTS)]
    answers = {}
    lock = threading.Lock()

    def worker(client_index):
        with ServingClient(host, port) as client:
            client.health()  # connection warm-up outside the clock
            barrier.wait(timeout=60)
            for i in range(QUERIES_PER_CLIENT):
                seeds = pool[(client_index + i) % len(pool)]
                t0 = time.perf_counter()
                value = client.spread("bench_serving", seeds)
                latencies[client_index].append(time.perf_counter() - t0)
                with lock:
                    answers[(client_index, i)] = value

    threads = [
        threading.Thread(target=worker, args=(index,))
        for index in range(CLIENTS)
    ]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0
    flat = sorted(lat for per_client in latencies for lat in per_client)
    return flat, answers, elapsed


def _measure_arm(store_root, pool, window_ms):
    proc, host, port = _start_server(store_root, window_ms)
    try:
        latencies, answers, elapsed = _drive(host, port, pool)
        with ServingClient(host, port) as client:
            telemetry = client.stats()["coalescing"].get("bench_serving", {})
    finally:
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    clean = proc.returncode == 0 and "leaked=0" in out
    total = CLIENTS * QUERIES_PER_CLIENT
    return {
        "latencies": latencies,
        "answers": answers,
        "p50_ms": round(statistics.median(latencies) * 1e3, 3),
        "p99_ms": round(latencies[int(0.99 * (len(latencies) - 1))] * 1e3, 3),
        "qps": round(total / elapsed, 1),
        "largest_batch": telemetry.get("largest_batch", 0),
        "batches": telemetry.get("batches", 0),
        "clean_shutdown": clean,
        "stderr": err,
    }


def _run_serving():
    store_root = REPO_ROOT / "benchmarks" / "results" / "serving_fleet"
    store_root.mkdir(parents=True, exist_ok=True)
    store_path = store_root / "bench_serving.sketch"
    graph = random_wc_graph(NODES, avg_degree=7, seed=41)
    store = build_store(
        graph,
        MAX_BUDGET,
        estimation_rr_sets=RR_SETS,
        ctx=EngineContext.create(seed=6),
    )
    store.save(store_path)
    pool = _query_pool(store.num_nodes)
    service = OracleService(store)
    expected = {
        tuple(seeds): service.estimate_spread(seeds) for seeds in pool
    }

    coalesced = _measure_arm(store_root, pool, WINDOW_MS)
    uncoalesced = _measure_arm(store_root, pool, 0.0)

    golden = all(
        value == expected[tuple(pool[(client + i) % len(pool)])]
        for arm in (coalesced, uncoalesced)
        for (client, i), value in arm["answers"].items()
    )
    store_path.unlink(missing_ok=True)
    return [
        {
            "graph": f"wc_{NODES // 1000}k",
            "nodes": graph.num_nodes,
            "rr_sets": store.num_sets,
            "clients": CLIENTS,
            "queries": CLIENTS * QUERIES_PER_CLIENT,
            "seeds_per_query": SEEDS_PER_QUERY,
            "window_ms": WINDOW_MS,
            "p50_ms_coalesced": coalesced["p50_ms"],
            "p99_ms_coalesced": coalesced["p99_ms"],
            "qps_coalesced": coalesced["qps"],
            "p50_ms_uncoalesced": uncoalesced["p50_ms"],
            "p99_ms_uncoalesced": uncoalesced["p99_ms"],
            "qps_uncoalesced": uncoalesced["qps"],
            "coalesce_speedup": round(
                coalesced["qps"] / uncoalesced["qps"], 2
            ),
            "largest_batch": coalesced["largest_batch"],
            "batches": coalesced["batches"],
            "golden_match": bool(golden),
            "clean_shutdown": bool(
                coalesced["clean_shutdown"] and uncoalesced["clean_shutdown"]
            ),
        }
    ]


def test_oracle_serving_coalescing(benchmark):
    rows = run_once(benchmark, _run_serving)
    record(
        "oracle_serving",
        rows,
        header="spread qps/latency: coalescing on vs off, 8 clients",
    )
    JSON_PATH.write_text(json.dumps(rows, indent=2) + "\n")

    for row in rows:
        # Acceptance gate: batching buys real throughput under load.
        assert row["coalesce_speedup"] >= MIN_SPEEDUP, row
        # Golden gate: coalescing changes no answer, ever.
        assert row["golden_match"], row
        # The telemetry must prove queries actually shared batches.
        assert row["largest_batch"] >= 2, row
        # Both servers exited 0 on SIGINT with every mmap released.
        assert row["clean_shutdown"], row
        assert row["clients"] >= 8, row


if __name__ == "__main__":
    results = _run_serving()
    print(json.dumps(results, indent=2))
    JSON_PATH.write_text(json.dumps(results, indent=2) + "\n")
