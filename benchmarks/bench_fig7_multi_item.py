"""Fig. 7 — multi-item welfare, configurations 5–8 (Twitter stand-in).

Paper shapes asserted per panel: bundleGRD's welfare dominates (or matches,
where the configurations force identical allocations) both item-disj and
bundle-disj, and welfare grows with total budget.
"""

import pytest

from _bench_utils import BENCH_SAMPLES, BENCH_SCALE, record, run_once
from repro.experiments.fig7_multi_item import (
    run_fig7,
    runs_as_rows,
    welfare_series,
)

TOTAL_BUDGETS = (100, 300, 500)


@pytest.mark.parametrize("config_id", [5, 6, 7, 8])
def test_fig7_panel(benchmark, config_id):
    def run():
        return run_fig7(
            config_id,
            network="twitter",
            scale=BENCH_SCALE,
            total_budgets=TOTAL_BUDGETS,
            num_samples=BENCH_SAMPLES,
        )

    runs = run_once(benchmark, run)
    record(
        f"fig7_config{config_id}",
        runs_as_rows(runs),
        header=f"twitter scale={BENCH_SCALE}",
    )

    series = welfare_series(runs)
    # bundleGRD >= baselines at the largest budget (10% MC slack).
    top = series["bundleGRD"][-1]
    assert top >= 0.9 * series["item-disj"][-1]
    assert top >= 0.9 * series["bundle-disj"][-1]
    # welfare grows with total budget
    assert series["bundleGRD"][-1] > series["bundleGRD"][0]
