"""Ablation — PRIMA's multi-budget reuse vs per-budget IMM calls.

bundleGRD's cost hinges on PRIMA answering the whole budget vector with one
RR-set collection.  The ablation re-derives the same nested-prefix allocation
by calling IMM separately per distinct budget (what a naive implementation
would do) and compares: seed quality must be equivalent, while PRIMA saves
both wall-clock and total RR sets.
"""

import time

import numpy as np

from _bench_utils import BENCH_SCALE, record, run_once
from repro.diffusion.ic import estimate_spread
from repro.graph import datasets
from repro.rrset.imm import imm
from repro.rrset.prima import prima

BUDGETS = [100, 60, 30, 10]


def test_ablation_prima_vs_per_budget_imm(benchmark):
    graph = datasets.load("twitter", scale=BENCH_SCALE)

    def run():
        t0 = time.perf_counter()
        prima_result = prima(
            graph, BUDGETS, rng=np.random.default_rng(0)
        )
        prima_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        imm_runs = {
            k: imm(graph, k, rng=np.random.default_rng(0)) for k in BUDGETS
        }
        imm_seconds = time.perf_counter() - t0
        return prima_result, prima_seconds, imm_runs, imm_seconds

    prima_result, prima_seconds, imm_runs, imm_seconds = run_once(benchmark, run)

    rng = np.random.default_rng(1)
    rows = []
    for k in BUDGETS:
        prefix_spread = estimate_spread(
            graph, prima_result.seeds_for_budget(k), 150, rng
        )
        imm_spread = estimate_spread(graph, imm_runs[k].seeds, 150, rng)
        rows.append(
            {
                "budget": k,
                "prima_prefix_spread": round(prefix_spread, 1),
                "dedicated_imm_spread": round(imm_spread, 1),
            }
        )
    rows.append(
        {
            "budget": "TOTAL",
            "prima_prefix_spread": (
                f"{prima_seconds:.2f}s / {prima_result.num_rr_sets} RR"
            ),
            "dedicated_imm_spread": (
                f"{imm_seconds:.2f}s / "
                f"{sum(r.num_rr_sets for r in imm_runs.values())} RR"
            ),
        }
    )
    record("ablation_prima_reuse", rows, header=f"twitter scale={BENCH_SCALE}")

    # Quality parity: each prefix within 15% of the dedicated run.
    for row in rows[:-1]:
        assert row["prima_prefix_spread"] >= 0.85 * row["dedicated_imm_spread"]
    # Cost: one PRIMA call beats four IMM calls on total work.
    total_imm_rr = sum(r.num_rr_sets for r in imm_runs.values())
    assert prima_result.num_rr_sets < total_imm_rr
    assert prima_seconds < imm_seconds
