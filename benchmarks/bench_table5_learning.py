"""Table 5 — the auction-learning pipeline for the PlayStation itemsets.

Runs the simulated-auction substitute of the paper's eBay pipeline for every
anchor itemset of Table 5, learning value and noise from censored winning
prices, and prints learned vs ground-truth values alongside the fixed prices.
Shape assertion: every learned value is within 2% of its anchor and every
learned sigma within 25% (order-statistic inversion at 300 auctions).
"""

import pytest

from _bench_utils import record, run_once
from repro.utility.auctions import learn_item_parameters
from repro.utility.learned import table5_rows

#: (itemset label, ground-truth value, ground-truth noise sigma) per Table 5.
ANCHORS = (
    ("{ps}", 213.0, 4.0),
    ("{ps, c}", 220.0, 6.0),
    ("{ps, g1, g2, g3}", 258.0, 4.0),
    ("{ps, g1, g2, c}", 292.5, 5.0),
    ("{ps, g1, g2, g3, c}", 302.0, 7.0),
)


def test_table5_auction_learning(benchmark):
    def run():
        learned = []
        for i, (label, value, sigma) in enumerate(ANCHORS):
            params = learn_item_parameters(
                value, sigma, num_auctions=300, bidders_per_auction=8,
                seed=100 + i,
            )
            learned.append((label, value, sigma, params))
        return learned

    results = run_once(benchmark, run)
    prices = {r["itemset"]: r["price"] for r in table5_rows()}
    rows = [
        {
            "itemset": label,
            "price": prices[label],
            "true_value": value,
            "learned_value": round(params.value, 1),
            "true_sigma": sigma,
            "learned_sigma": round(params.noise_std, 2),
        }
        for label, value, sigma, params in results
    ]
    record("table5_learning", rows, header="300 simulated auctions per itemset")

    for label, value, sigma, params in results:
        assert params.value == pytest.approx(value, rel=0.02), label
        assert params.noise_std == pytest.approx(sigma, rel=0.25), label
