"""Fig. 8(a) — running time vs number of items (config 5, per-item budget 50).

Paper shape asserted: bundleGRD's running time is flat in the number of items
(one PRIMA call on the max budget), while bundle-disj grows roughly linearly
(one IMM call per item) and item-disj grows with the total seed count.
"""


from _bench_utils import BENCH_SCALE, record, run_once
from repro.experiments.fig8_real import run_items_runtime

ITEM_COUNTS = (1, 3, 5, 8, 10)


def test_fig8a_items_vs_runtime(benchmark):
    def run():
        return run_items_runtime(
            network="twitter",
            scale=BENCH_SCALE,
            item_counts=ITEM_COUNTS,
            per_item_budget=50,
        )

    runs = run_once(benchmark, run)
    rows = [
        {
            "algorithm": r.algorithm,
            "num_items": r.num_items,
            "seconds": round(r.seconds, 3),
        }
        for r in runs
    ]
    record("fig8a_items_runtime", rows, header=f"twitter scale={BENCH_SCALE}")

    series = {}
    for r in runs:
        series.setdefault(r.algorithm, []).append(r.seconds)
    # bundleGRD flat: the 10-item run costs at most ~2x the 1-item run.
    assert series["bundleGRD"][-1] < 2.5 * max(series["bundleGRD"][0], 0.05)
    # bundle-disj grows: the 10-item run clearly exceeds its 1-item run and
    # bundleGRD's 10-item run.
    assert series["bundle-disj"][-1] > 2 * series["bundleGRD"][-1]
    assert series["bundle-disj"][-1] > 2 * series["bundle-disj"][0]
